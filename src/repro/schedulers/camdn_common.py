"""Shared machinery of the two CaMDN scheduler variants.

Both variants drive a :class:`~repro.core.camdn.CaMDNSystem` through the
engine's layer protocol; they differ only in the system mode (``full`` vs
``hw_only``) and in the optional AuRORA-style QoS integration (the paper's
Figure 9 configuration gives CaMDN the same bandwidth and NPU allocation
algorithms as AuRORA).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SoCConfig
from ..core.allocator import LOOKAHEAD_FRACTION, AllocationDecision
from ..core.camdn import CaMDNSystem, LayerGrant
from ..errors import SimulationError
from ..memory.bwalloc import DemandProportionalPolicy, SlackWeightedPolicy
from ..sim import native as _native
from ..sim.task import LayerWork, TaskInstance
from .base import SchedulerPolicy

#: With multicast, extra cores add only a small per-core control traffic
#: overhead instead of replicating tensors.
MULTICAST_TRAFFIC_OVERHEAD = 0.05

#: NEC transfers are explicit bulk streams (whole tiles/pages in order), so
#: they sustain near-peak DRAM efficiency regardless of tenant count.
CAMDN_DRAM_EFFICIENCY = 0.92


class CaMDNSchedulerBase(SchedulerPolicy):
    """Engine adapter around :class:`CaMDNSystem`."""

    #: CaMDN system mode; overridden by subclasses.
    mode = "full"

    #: Both share policies floor every tenant's share above zero.
    positive_shares = True

    def __init__(self, qos_mode: bool = False, urgency: float = 3.0,
                 floor: float = 0.02,
                 usage_levels: Optional[tuple] = None,
                 lbm_occupancy_fraction: Optional[float] = None) -> None:
        super().__init__()
        self.qos_mode = qos_mode
        self._bw_policy = SlackWeightedPolicy(urgency=urgency, floor=floor)
        self._demand_policy = DemandProportionalPolicy(floor=floor)
        self.usage_levels = usage_levels
        self.lbm_occupancy_fraction = lbm_occupancy_fraction
        self.system: Optional[CaMDNSystem] = None
        #: id(candidate) -> (candidate, {cores: LayerWork}).  A granted
        #: candidate fully determines its LayerWork (model layer ->
        #: compute cycles, candidate -> DRAM bytes, cores -> multicast
        #: factor), and the allocator memoizes decisions per MCT, so the
        #: same few candidates recur every inference of a stream.  The
        #: candidate is held in the value so the id key can never be
        #: reused by a new object while the entry lives.
        self._work_cache: Dict[int, tuple] = {}
        self._timeouts = 0
        self._lbm_layers = 0
        self._tenant_admits = 0
        self._tenant_retires = 0
        self._pages_retired = 0
        #: id(mapping_file) -> (mapping_file, rows, pairs) tables for
        #: the native completion handler (see _build_fast_file).
        self._fast_files: Dict[int, tuple] = {}
        self._advance_native = None
        self._alloc = None

    def attach(self, soc: SoCConfig) -> None:
        super().attach(soc)
        self._tenant_admits = 0
        self._tenant_retires = 0
        self._pages_retired = 0
        mapper = None
        if self.usage_levels is not None or \
                self.lbm_occupancy_fraction is not None:
            from ..core.mapper.layer_mapper import LayerMapper

            kwargs = {}
            if self.usage_levels is not None:
                kwargs["usage_levels"] = tuple(self.usage_levels)
            if self.lbm_occupancy_fraction is not None:
                kwargs["lbm_occupancy_fraction"] = \
                    self.lbm_occupancy_fraction
            mapper = LayerMapper(soc, **kwargs)
        self.system = CaMDNSystem(soc, mode=self.mode, mapper=mapper)
        self._work_cache = {}
        self._timeouts = 0
        self._lbm_layers = 0
        self._freq_hz = soc.npu.frequency_hz
        #: n -> (base, remaining) demand-share constants (exact floats
        #: of DemandProportionalPolicy.allocate_list for that n).
        self._share_consts: Dict[int, tuple] = {}
        # Bound hot-path methods: the per-layer chain runs twice per
        # simulated event, so the attribute walks are resolved once.
        self._alloc_end = self.system.allocator.end_layer_prepared
        self._alloc_select = self.system.allocator.select_prepared
        self._sys_try = self.system._try_grant
        self._sys_hw = (
            self.system._hw_only_decision
            if self.system._hw_only else None
        )
        self._alloc = self.system.allocator
        self._fast_files = {}
        self._advance_native = _native.camdn_advance()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The whole :class:`CaMDNSystem` (allocator SoA arrays, regions,
        CPT, page reverse maps, task contexts) rides the payload by
        reference — the ``_ctx`` tuples are the very objects pinned on
        the instances' ``sched_ctx``, and one shared pickle keeps those
        identities.  The id-keyed work cache and the per-n share
        constants are pure memos and stay behind."""
        state = super().snapshot_state()
        state.update(
            qos_mode=self.qos_mode,
            bw_policy=self._bw_policy,
            demand_policy=self._demand_policy,
            usage_levels=self.usage_levels,
            lbm_occupancy_fraction=self.lbm_occupancy_fraction,
            system=self.system,
            timeouts=self._timeouts,
            lbm_layers=self._lbm_layers,
            tenant_admits=self._tenant_admits,
            tenant_retires=self._tenant_retires,
            pages_retired=self._pages_retired,
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.qos_mode = state["qos_mode"]
        self._bw_policy = state["bw_policy"]
        self._demand_policy = state["demand_policy"]
        self.usage_levels = state["usage_levels"]
        self.lbm_occupancy_fraction = state["lbm_occupancy_fraction"]
        self.system = state["system"]
        self._timeouts = state["timeouts"]
        self._lbm_layers = state["lbm_layers"]
        self._tenant_admits = state["tenant_admits"]
        self._tenant_retires = state["tenant_retires"]
        self._pages_retired = state["pages_retired"]
        # id()-keyed memos never survive a process change; rebuilt
        # lazily with identical pure values.
        self._work_cache = {}
        self._share_consts = {}
        # Re-bind the hot-path methods to the restored system (attach()
        # bound them to the fresh one it built, now discarded).
        self._alloc_end = self.system.allocator.end_layer_prepared
        self._alloc_select = self.system.allocator.select_prepared
        self._sys_try = self.system._try_grant
        self._sys_hw = (
            self.system._hw_only_decision
            if self.system._hw_only else None
        )
        self._alloc = self.system.allocator
        self._fast_files = {}
        self._advance_native = _native.camdn_advance()

    # ------------------------------------------------------------------
    # Core allocation (AuRORA-compatible in QoS mode)
    # ------------------------------------------------------------------

    def cores_for(self, instance: TaskInstance, free_cores: int) -> int:
        if not self.qos_mode or free_cores < 2:
            return 1
        if instance.qos_target_s == float("inf"):
            return 1
        est = self.est_isolated_latency_s(instance)
        if est > 0.7 * instance.qos_target_s:
            return min(2, free_cores)
        return 1

    # ------------------------------------------------------------------
    # Layer protocol
    # ------------------------------------------------------------------

    def on_tenant_admit(self, stream_id: str, graph, now: float) -> None:
        """Run (or reuse) the model's offline mapping at admission time,
        so a tenant joining mid-run pays the mapping cost here rather
        than inside its first inference's ``begin_layer`` chain."""
        self.system.mapper.map_model(graph)
        self._tenant_admits += 1

    def on_tenant_retire(self, stream_id: str, now: float) -> None:
        """Departure audit: the tenant's in-flight inference (if any) was
        already ended or cancelled through :meth:`on_task_end`, so no
        allocator task, region or pages may remain under its stream id.
        A leak here means churn left cache pages orphaned."""
        self._tenant_retires += 1
        prefix = f"{stream_id}#"
        for task_id in self.system.allocator.tasks:
            if task_id.startswith(prefix):
                raise SimulationError(
                    f"tenant {stream_id} retired with allocator state "
                    f"still registered for {task_id}"
                )

    def on_pages_retired(self, count: int, rng_key: str,
                         now: float) -> Tuple[int, ...]:
        """ECC fault: evacuate and permanently retire SPM pages.

        Delegates to :meth:`CaMDNSystem.retire_pages` — owned victims
        are remapped or shrunk out of their regions, the MCT geometry
        then downgrades future grants against the reduced capacity
        (graceful degradation through the existing Figure 6 loop, no
        crash path).  The bound ``_sys_try`` hot path stays valid:
        retirement mutates the shared allocator in place.
        """
        retired = self.system.retire_pages(count, rng_key)
        self._pages_retired += len(retired)
        return retired

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        self.system.admit_task(instance.instance_id, instance.graph)
        # Pin the resolved (state, region) context on the instance: the
        # per-layer hooks read a slot attribute instead of hashing the
        # instance id into the context dict twice per simulated event.
        instance.sched_ctx = self.system._ctx[instance.instance_id]

    def begin_layer(self, instance: TaskInstance, now: float
                    ) -> Tuple[Optional[LayerWork], float]:
        # Flattened CaMDNSystem.begin_layer: the context pinned at task
        # start leads straight into the allocator — this chain runs
        # twice per simulated event, so the facade wrappers are bypassed.
        ctx = instance.sched_ctx
        if ctx is None:
            grant = self.system.begin_layer(  # raises "not registered"
                instance.instance_id, instance.layer_index, now
            )
            return self._grant_to_work(instance, grant)
        state, region = ctx
        layer_index = instance.layer_index
        hw = self._sys_hw
        if hw is not None:
            decision = hw(state, layer_index)
        else:
            decision = self._alloc_select(state, layer_index, now)
        grant = self._sys_try(state, region, layer_index, decision)
        return self._grant_to_work(instance, grant)

    def poll_layer(self, instance: TaskInstance, now: float
                   ) -> Tuple[Optional[LayerWork], float]:
        # Re-select with fresh predictions; pages may have been freed.
        return self.begin_layer(instance, now)

    def advance_layer(self, instance: TaskInstance, now: float
                      ) -> Tuple[Optional[LayerWork], float]:
        """Fused engine hook: end-of-layer bookkeeping plus next-layer
        selection in one call (resolves the task context once).  Must
        behave exactly like ``on_layer_end`` -> ``layer_index += 1`` ->
        ``begin_layer``; the engine only calls it when the next layer
        exists."""
        ctx = instance.sched_ctx
        if ctx is None:
            # Defensive fallback to the split protocol (raises there).
            self.on_layer_end(instance, now)
            instance.layer_index += 1
            return self.begin_layer(instance, now)
        state, region = ctx
        layer_index = instance.layer_index
        fast = self._advance_native
        if fast is not None:
            # Native per-completion fast path: end-of-layer predictor
            # update, next-layer selection and the no-resize grant in
            # one C call.  None means the C side bailed without mutating
            # anything; the Python chain below then owns the event.
            mf = state.mapping_file
            ft = self._fast_files.get(id(mf))
            if ft is None or ft[0] is not mf:
                ft = self._build_fast_file(mf)
            nxt = layer_index + 1
            rows = ft[1]
            if nxt < len(rows):
                alloc = self._alloc
                block = state.lbm_block
                if block is not None:
                    ls, le = block
                else:
                    ls = le = -1
                res = fast(
                    alloc._tnext, alloc._pnext, alloc._palloc,
                    state._slot, now, alloc.total_pages,
                    alloc._palloc_sum, ls, le, layer_index,
                    len(region.pcpns), rows[nxt],
                    1 if self._sys_hw is not None else 0,
                    self.system._share,
                )
                if res is not None:
                    code, nls, nle = res
                    if nls != ls or nle != le:
                        # block_of returns the mapping file's canonical
                        # block tuple — the very object the Python chain
                        # would install, keeping pickled object graphs
                        # (snapshot bytes) identical across paths.
                        state.lbm_block = (
                            None if nls < 0 else mf.block_of(nxt)
                        )
                    instance.layer_index = nxt
                    # cores is capped at 2 (cores_for), so packing the
                    # selection code above it can never collide.
                    entry = ft[2][nxt].get(code * 64 + instance.cores)
                    if entry is None:
                        entry = self._build_fast_pair(
                            instance, state, region, nxt, code, ft
                        )
                    instance.sched_scratch = entry[0]
                    if entry[2]:
                        self._lbm_layers += 1
                    return entry[1]
        self._alloc_end(state, layer_index, now)
        layer_index += 1
        instance.layer_index = layer_index
        hw = self._sys_hw
        if hw is not None:
            decision = hw(state, layer_index)
        else:
            decision = self._alloc_select(state, layer_index, now)
        grant = self._sys_try(state, region, layer_index, decision)
        # Inlined granted fast path of _grant_to_work (this chain runs
        # twice per simulated event).
        instance.sched_scratch = grant
        if grant.granted:
            candidate = grant.decision.candidate
            entry = self._work_cache.get(id(candidate))
            if entry is None or entry[0] is not candidate:
                entry = self._work_entry(candidate)
            if entry[2]:
                self._lbm_layers += 1
            pair = entry[1].get(instance.cores)
            if pair is not None:
                return pair
            return self._build_work(instance, candidate, entry)
        return self._grant_to_work(instance, grant)

    def timeout_layer(self, instance: TaskInstance, now: float
                      ) -> Tuple[Optional[LayerWork], float]:
        self._timeouts += 1
        last = instance.sched_scratch
        grant = self.system.retry_layer(
            instance.instance_id, instance.layer_index, last
        )
        return self._grant_to_work(instance, grant)

    def on_layer_end(self, instance: TaskInstance, now: float) -> None:
        ctx = instance.sched_ctx
        if ctx is None:
            self.system.finish_layer(         # raises "not registered"
                instance.instance_id, instance.layer_index, now
            )
            return
        self.system.allocator.end_layer_prepared(
            ctx[0], instance.layer_index, now
        )

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        self.system.retire_task(instance.instance_id, now)
        instance.sched_scratch = None
        instance.sched_ctx = None

    # ------------------------------------------------------------------
    # Native completion-handler support tables
    # ------------------------------------------------------------------

    def _build_fast_file(self, mf) -> tuple:
        """Precompute the per-layer geometry rows the C completion
        handler reads, plus one ``(grant, (work, 0.0), is_lbm)`` memo
        dict per layer keyed by ``code * 64 + cores``.

        One table per mapping file (shared by every task of the model):
        every field is a frozen per-layer constant — candidate page
        counts, block bounds, profiled latencies and their timeout
        scalings — so the C side never touches a Python object graph
        beyond one tuple row and the predictor lists.
        """
        alloc = self._alloc
        geoms = mf.layer_geometries(alloc.page_bytes)
        heads = mf.block_head_flags()
        block_est = mf.block_latencies()
        ests = mf.scaled_latencies(1.0)
        touts = mf.scaled_latencies(LOOKAHEAD_FRACTION)
        blocks = mf._layer_block_table()
        rows = []
        pairs: List[dict] = []
        for i, geom in enumerate(geoms):
            blk = blocks[i]
            rows.append((
                -1 if geom.lbm_pages is None else geom.lbm_pages,
                1 if heads[i] else 0,
                -1 if blk is None else blk[0],
                -1 if blk is None else blk[1],
                block_est[i] * LOOKAHEAD_FRACTION,
                ests[i],
                touts[i],
                1 if geom.single_level else 0,
                1 if geom.is_sorted else 0,
                1 if geom.trivial else 0,
                tuple(geom.unique_pages),
                tuple(geom.first_of_unique),
                tuple(geom.last_of_unique),
                tuple(geom.lwm_pages),
            ))
            pairs.append({})
        ft = (mf, rows, pairs)
        self._fast_files[id(mf)] = ft
        return ft

    def _build_fast_pair(self, instance: TaskInstance, state, region,
                         layer_index: int, code: int, ft: tuple
                         ) -> tuple:
        """Cold miss of the native completion handler: rebuild the
        decision the C selection ``code`` denotes — through the same
        geometry decision cache the Python chain uses, so both paths
        create identical cache entries at the first occurrence — then
        run the exact grant/work machinery once and memoize the
        ``(grant, (work, 0.0), is_lbm)`` triple.

        Re-running ``_try_grant`` after the C commit is idempotent: the
        footprint equals the region (no resize), palloc is unchanged
        (the skipped write), and an enabling decision re-installs the
        same block bounds the C call already reported."""
        geom = state.geoms[layer_index]
        cache = geom.decision_cache
        mct = state.mcts[layer_index]
        if self._sys_hw is not None:
            if code < 2:
                enables = code == 0
                key = "hw_lbm_on" if enables else "hw_lbm_keep"
                decision = cache.get(key)
                if decision is None:
                    decision = AllocationDecision(
                        candidate=mct.lbm,
                        pages_needed=geom.lbm_pages,
                        timeout_s=0.0,
                        enables_lbm=enables,
                    )
                    cache[key] = decision
            else:
                i = code - 2
                decision = cache.get(i)
                if decision is None:
                    decision = AllocationDecision(
                        candidate=mct.lwm[i],
                        pages_needed=geom.lwm_pages[i],
                        timeout_s=0.0,
                    )
                    cache[i] = decision
        elif code == 0:
            decision = cache.get("lbm_sticky")
            if decision is None:
                decision = AllocationDecision(
                    candidate=mct.lbm,
                    pages_needed=geom.lbm_pages,
                    timeout_s=math.inf,
                )
                cache["lbm_sticky"] = decision
        elif code == 1:
            timeout = state.block_est[layer_index] * LOOKAHEAD_FRACTION
            key = ("lbm_head", timeout)
            decision = cache.get(key)
            if decision is None:
                decision = AllocationDecision(
                    candidate=mct.lbm,
                    pages_needed=geom.lbm_pages,
                    timeout_s=timeout,
                    enables_lbm=True,
                )
                cache[key] = decision
        elif code == 2:
            timeout = state.timeouts[layer_index]
            decision = cache.get("lwm0")
            if decision is None or decision.timeout_s != timeout:
                decision = AllocationDecision(
                    candidate=mct.lwm[0],
                    pages_needed=geom.lwm_pages[0],
                    timeout_s=timeout,
                )
                cache["lwm0"] = decision
        else:
            i = code - 3
            timeout = state.timeouts[layer_index]
            key = ("lwm", i, timeout)
            decision = cache.get(key)
            if decision is None:
                decision = AllocationDecision(
                    candidate=mct.lwm[i],
                    pages_needed=geom.lwm_pages[i],
                    timeout_s=timeout,
                )
                cache[key] = decision
        grant = self._sys_try(state, region, layer_index, decision)
        candidate = decision.candidate
        wentry = self._work_entry(candidate)
        pair = wentry[1].get(instance.cores)
        if pair is None:
            pair = self._build_work(instance, candidate, wentry)
        entry = (grant, pair, wentry[2])
        ft[2][layer_index][code * 64 + instance.cores] = entry
        return entry

    # ------------------------------------------------------------------

    def _work_entry(self, candidate) -> tuple:
        """The candidate's ``(candidate, {cores: (work, 0.0)}, is_lbm)``
        work-cache entry (created on first sight)."""
        entry = self._work_cache.get(id(candidate))
        if entry is None or entry[0] is not candidate:
            entry = (candidate, {}, candidate.kind == "LBM")
            self._work_cache[id(candidate)] = entry
        return entry

    def _grant_to_work(self, instance: TaskInstance, grant: LayerGrant
                       ) -> Tuple[Optional[LayerWork], float]:
        instance.sched_scratch = grant
        if not grant.granted:
            timeout = grant.wait_timeout_s
            if math.isinf(timeout):
                # Defensive: never hand the engine an unbounded wait.
                # The registered mapping file is the same memoized object
                # map_model() would return, without rebuilding its key.
                mf = self.system.allocator.task(
                    instance.instance_id
                ).mapping_file
                timeout = max(
                    mf.mcts[instance.layer_index].est_latency_s * 0.2,
                    1e-6,
                )
            return None, timeout
        candidate = grant.decision.candidate
        entry = self._work_entry(candidate)
        if entry[2]:
            self._lbm_layers += 1
        pair = entry[1].get(instance.cores)
        if pair is None:
            pair = self._build_work(instance, candidate, entry)
        return pair

    def _build_work(self, instance: TaskInstance, candidate,
                    entry: tuple) -> Tuple[LayerWork, float]:
        """Build and cache the ``(LayerWork, 0.0)`` pair for a granted
        candidate on this instance's core count."""
        dram = candidate.dram_bytes
        if instance.cores > 1:
            # Multicast combines the per-core identical reads.
            dram *= 1.0 + MULTICAST_TRAFFIC_OVERHEAD * \
                (instance.cores - 1)
        work = LayerWork(
            compute_cycles=self.compute_cycles(instance),
            dram_bytes=dram,
        )
        pair = (work, 0.0)
        entry[1][instance.cores] = pair
        return pair

    # ------------------------------------------------------------------

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        return CAMDN_DRAM_EFFICIENCY

    def uniform_dram_efficiency(self, num_running: int
                                ) -> Optional[float]:
        return CAMDN_DRAM_EFFICIENCY

    def rate_kernel(self) -> Optional[tuple]:
        """Non-QoS mode is plain demand-proportional over the remaining
        work; QoS mode is AuRORA's slack-weighted rule.  Both are
        expressible as fused specs."""
        if self.qos_mode:
            return (
                "slack_weighted",
                self._bw_policy.urgency,
                self._bw_policy.floor,
            )
        return ("demand_prop", self._demand_policy.floor)

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        """Demand-proportional shares by default (bandwidth allocation is
        orthogonal to CaMDN and the baselines also manage it); AuRORA's
        slack-weighted allocation in QoS mode (the Figure 9 integration).
        """
        if not running:
            return {}
        demands = {}
        for iid, inst in running.items():
            compute_s = max(
                inst.rem_compute_cycles / self.soc.npu.frequency_hz, 1e-9
            )
            demands[iid] = max(inst.rem_dram_bytes, 1.0) / compute_s
        if not self.qos_mode:
            return dict(self._demand_policy.allocate(demands).shares)
        slacks = {}
        for iid, inst in running.items():
            est = self.est_isolated_latency_s(inst)
            slacks[iid] = self.slack_of(inst, now, est)
        allocation = self._bw_policy.allocate(demands, slacks)
        return dict(allocation.shares)

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Positional fast path mirroring :meth:`bandwidth_shares`.

        The non-QoS branch inlines
        :meth:`~repro.memory.bwalloc.DemandProportionalPolicy.allocate_list`
        with the exact same expressions in the exact same order (demands
        are always positive here, so its non-negative fast path is the
        only reachable one), fusing the demand and share computations
        that run once per simulated event.
        """
        if not insts:
            return []
        freq = self._freq_hz
        demands = [
            (rem_d if rem_d > 1.0 else 1.0)
            / (t if (t := rem_c / freq) > 1e-9 else 1e-9)
            for rem_c, rem_d in zip(rem_compute, rem_dram)
        ]
        if not self.qos_mode:
            n = len(demands)
            consts = self._share_consts.get(n)
            if consts is None:
                floor = self._demand_policy.floor
                floor_total = floor * n if floor * n < 1 else 0.0
                consts = (
                    floor if floor_total else 0.0,
                    1.0 - floor_total,
                )
                self._share_consts[n] = consts
            base, remaining = consts
            total = sum(demands)
            if total > 0:
                return [
                    base + remaining * (d / total) for d in demands
                ]
            return self._demand_policy.allocate_list(demands)
        slack_of = self.slack_of
        est_of = self.est_isolated_latency_s
        slacks = [
            slack_of(inst, now, est_of(inst)) for inst in insts
        ]
        return self._bw_policy.allocate_list(demands, slacks)

    def stats(self) -> Dict[str, float]:
        return {
            "timeouts": float(self._timeouts),
            "lbm_layers": float(self._lbm_layers),
            "tenant_admits": float(self._tenant_admits),
            "tenant_retires": float(self._tenant_retires),
            "pages_retired": float(self._pages_retired),
        }
