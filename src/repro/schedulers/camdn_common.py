"""Shared machinery of the two CaMDN scheduler variants.

Both variants drive a :class:`~repro.core.camdn.CaMDNSystem` through the
engine's layer protocol; they differ only in the system mode (``full`` vs
``hw_only``) and in the optional AuRORA-style QoS integration (the paper's
Figure 9 configuration gives CaMDN the same bandwidth and NPU allocation
algorithms as AuRORA).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SoCConfig
from ..core.camdn import CaMDNSystem, LayerGrant
from ..memory.bwalloc import DemandProportionalPolicy, SlackWeightedPolicy
from ..sim.task import LayerWork, TaskInstance
from .base import SchedulerPolicy

#: With multicast, extra cores add only a small per-core control traffic
#: overhead instead of replicating tensors.
MULTICAST_TRAFFIC_OVERHEAD = 0.05

#: NEC transfers are explicit bulk streams (whole tiles/pages in order), so
#: they sustain near-peak DRAM efficiency regardless of tenant count.
CAMDN_DRAM_EFFICIENCY = 0.92


class CaMDNSchedulerBase(SchedulerPolicy):
    """Engine adapter around :class:`CaMDNSystem`."""

    #: CaMDN system mode; overridden by subclasses.
    mode = "full"

    def __init__(self, qos_mode: bool = False, urgency: float = 3.0,
                 floor: float = 0.02,
                 usage_levels: Optional[tuple] = None,
                 lbm_occupancy_fraction: Optional[float] = None) -> None:
        super().__init__()
        self.qos_mode = qos_mode
        self._bw_policy = SlackWeightedPolicy(urgency=urgency, floor=floor)
        self._demand_policy = DemandProportionalPolicy(floor=floor)
        self.usage_levels = usage_levels
        self.lbm_occupancy_fraction = lbm_occupancy_fraction
        self.system: Optional[CaMDNSystem] = None
        self._grants: Dict[str, LayerGrant] = {}
        self._timeouts = 0
        self._lbm_layers = 0

    def attach(self, soc: SoCConfig) -> None:
        super().attach(soc)
        mapper = None
        if self.usage_levels is not None or \
                self.lbm_occupancy_fraction is not None:
            from ..core.mapper.layer_mapper import LayerMapper

            kwargs = {}
            if self.usage_levels is not None:
                kwargs["usage_levels"] = tuple(self.usage_levels)
            if self.lbm_occupancy_fraction is not None:
                kwargs["lbm_occupancy_fraction"] = \
                    self.lbm_occupancy_fraction
            mapper = LayerMapper(soc, **kwargs)
        self.system = CaMDNSystem(soc, mode=self.mode, mapper=mapper)
        self._grants = {}
        self._timeouts = 0
        self._lbm_layers = 0

    # ------------------------------------------------------------------
    # Core allocation (AuRORA-compatible in QoS mode)
    # ------------------------------------------------------------------

    def cores_for(self, instance: TaskInstance, free_cores: int) -> int:
        if not self.qos_mode or free_cores < 2:
            return 1
        if instance.qos_target_s == float("inf"):
            return 1
        est = self.est_isolated_latency_s(instance)
        if est > 0.7 * instance.qos_target_s:
            return min(2, free_cores)
        return 1

    # ------------------------------------------------------------------
    # Layer protocol
    # ------------------------------------------------------------------

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        self.system.admit_task(instance.instance_id, instance.graph)

    def begin_layer(self, instance: TaskInstance, now: float
                    ) -> Tuple[Optional[LayerWork], float]:
        grant = self.system.begin_layer(
            instance.instance_id, instance.layer_index, now
        )
        return self._grant_to_work(instance, grant)

    def poll_layer(self, instance: TaskInstance, now: float
                   ) -> Tuple[Optional[LayerWork], float]:
        # Re-select with fresh predictions; pages may have been freed.
        grant = self.system.begin_layer(
            instance.instance_id, instance.layer_index, now
        )
        return self._grant_to_work(instance, grant)

    def timeout_layer(self, instance: TaskInstance, now: float
                      ) -> Tuple[Optional[LayerWork], float]:
        self._timeouts += 1
        last = self._grants[instance.instance_id]
        grant = self.system.retry_layer(
            instance.instance_id, instance.layer_index, last
        )
        return self._grant_to_work(instance, grant)

    def on_layer_end(self, instance: TaskInstance, now: float) -> None:
        self.system.finish_layer(
            instance.instance_id, instance.layer_index, now
        )

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        self.system.retire_task(instance.instance_id, now)
        self._grants.pop(instance.instance_id, None)

    # ------------------------------------------------------------------

    def _grant_to_work(self, instance: TaskInstance, grant: LayerGrant
                       ) -> Tuple[Optional[LayerWork], float]:
        self._grants[instance.instance_id] = grant
        if not grant.granted:
            timeout = grant.wait_timeout_s
            if math.isinf(timeout):
                # Defensive: never hand the engine an unbounded wait.
                timeout = max(
                    self.system.mapper.map_model(instance.graph)
                    .mcts[instance.layer_index].est_latency_s * 0.2,
                    1e-6,
                )
            return None, timeout
        candidate = grant.decision.candidate
        if candidate.kind == "LBM":
            self._lbm_layers += 1
        dram = candidate.dram_bytes
        if instance.cores > 1:
            # Multicast combines the per-core identical reads.
            dram *= 1.0 + MULTICAST_TRAFFIC_OVERHEAD * \
                (instance.cores - 1)
        work = LayerWork(
            compute_cycles=self.compute_cycles(instance),
            dram_bytes=dram,
        )
        return work, 0.0

    # ------------------------------------------------------------------

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        return CAMDN_DRAM_EFFICIENCY

    def uniform_dram_efficiency(self, num_running: int
                                ) -> Optional[float]:
        return CAMDN_DRAM_EFFICIENCY

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        """Demand-proportional shares by default (bandwidth allocation is
        orthogonal to CaMDN and the baselines also manage it); AuRORA's
        slack-weighted allocation in QoS mode (the Figure 9 integration).
        """
        if not running:
            return {}
        demands = {}
        for iid, inst in running.items():
            compute_s = max(
                inst.rem_compute_cycles / self.soc.npu.frequency_hz, 1e-9
            )
            demands[iid] = max(inst.rem_dram_bytes, 1.0) / compute_s
        if not self.qos_mode:
            return dict(self._demand_policy.allocate(demands).shares)
        slacks = {}
        for iid, inst in running.items():
            est = self.est_isolated_latency_s(inst)
            slacks[iid] = self.slack_of(inst, now, est)
        allocation = self._bw_policy.allocate(demands, slacks)
        return dict(allocation.shares)

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Positional fast path mirroring :meth:`bandwidth_shares`."""
        if not insts:
            return []
        freq = self.soc.npu.frequency_hz
        demands = [
            max(rem_d, 1.0) / max(rem_c / freq, 1e-9)
            for rem_c, rem_d in zip(rem_compute, rem_dram)
        ]
        if not self.qos_mode:
            return self._demand_policy.allocate_list(demands)
        slack_of = self.slack_of
        est_of = self.est_isolated_latency_s
        slacks = [
            slack_of(inst, now, est_of(inst)) for inst in insts
        ]
        return self._bw_policy.allocate_list(demands, slacks)

    def stats(self) -> Dict[str, float]:
        return {
            "timeouts": float(self._timeouts),
            "lbm_layers": float(self._lbm_layers),
        }
