"""Unmanaged shared-cache baseline (the Section II-C motivation setup).

Every tenant's traffic flows through the transparent shared cache; nothing
partitions bandwidth or cache.  This is the configuration behind Figure 2:
hit rate collapses and memory access grows as tenants are added.

Traffic model: a layer's cache-level accesses are its compulsory tensor
fetches *plus* the scratchpad-tiling refetch traffic.  The refetch volume
comes from the same zero-cache-budget mapping the CaMDN compiler produces
(identical tiling hardware), but where CaMDN retains refetched data in an
exclusive region, the baseline trusts the transparent cache: refetches have
short reuse distances (the layer's working set) and hit when the machine is
lightly loaded, then spill to DRAM as co-tenants inflate stack distances —
the mechanism behind Figure 2's memory-access growth.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cache.transparent import (
    AccessSegment,
    TransparentCacheModel,
    layer_access_segments,
)
from ..config import SoCConfig
from ..core.mapper.layer_mapper import LayerMapper
from ..models.graph import ModelGraph
from ..sim.task import LayerWork, TaskInstance
from .base import SchedulerPolicy

#: Traffic replication factor per extra core when a model spans NPUs
#: without multicast support (partial input/weight duplication).
CORE_TRAFFIC_REPLICATION = 0.3

#: DRAM efficiency of demand-miss traffic: a lone tenant keeps some row
#: locality; fully interleaved tenants degrade toward the scattered-access
#: floor.  eta(N) = FLOOR + LOCALITY_BONUS / N.
DRAM_EFF_FLOOR = 0.55
DRAM_EFF_LOCALITY_BONUS = 0.30


class SharedCacheBaseline(SchedulerPolicy):
    """Transparent shared cache, equal bandwidth, one core per task."""

    name = "baseline"

    def __init__(self) -> None:
        super().__init__()
        self._cache_model: Optional[TransparentCacheModel] = None
        self._active_ids: set = set()
        self._mapper: Optional[LayerMapper] = None
        self._segments: Dict[str, Tuple[Tuple[AccessSegment, ...], ...]] = {}

    def attach(self, soc: SoCConfig) -> None:
        super().attach(soc)
        self._cache_model = TransparentCacheModel(soc.cache.total_bytes)
        self._active_ids = set()
        self._mapper = LayerMapper(soc)
        self._segments = {}

    # ------------------------------------------------------------------

    def _model_segments(self, graph: ModelGraph
                        ) -> Tuple[Tuple[AccessSegment, ...], ...]:
        """Per-layer segments: compulsory fetches + tiling refetch."""
        cached = self._segments.get(graph.name)
        if cached is not None:
            return cached
        dtype = self.soc.dtype_bytes
        mapping_file = self._mapper.map_model(graph)
        per_layer = []
        for i, layer in enumerate(graph.layers):
            segments = list(layer_access_segments(graph, i, dtype))
            compulsory = layer.total_elems * dtype
            tiled = mapping_file.mcts[i].lwm[0].dram_bytes
            refetch = max(tiled - compulsory, 0.0)
            if refetch > 0:
                working_set = layer.total_elems * dtype
                segments.append(
                    AccessSegment(
                        bytes_=refetch,
                        reuse_distance=float(working_set),
                    )
                )
            per_layer.append(tuple(segments))
        result = tuple(per_layer)
        self._segments[graph.name] = result
        return result

    # ------------------------------------------------------------------

    def contention_factor(self, instance: TaskInstance) -> float:
        """Effective reuse-distance inflation for ``instance``.

        The engine does not pass the running set into ``begin_layer``, so
        the policy tracks it via task start/end hooks.
        """
        return float(max(len(self._active_ids), 1))

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        self._active_ids.add(instance.instance_id)

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        self._active_ids.discard(instance.instance_id)

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        """Scattered demand misses: row locality decays with tenant count.
        """
        return DRAM_EFF_FLOOR + DRAM_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    def begin_layer(self, instance: TaskInstance, now: float
                    ) -> Tuple[Optional[LayerWork], float]:
        segments = self._model_segments(
            instance.graph
        )[instance.layer_index]
        factor = self.contention_factor(instance)
        dram, hits, accesses = self._cache_model.layer_traffic(
            segments, contention_factor=factor
        )
        if instance.cores > 1:
            replication = 1.0 + CORE_TRAFFIC_REPLICATION * \
                (instance.cores - 1)
            dram *= replication
        work = LayerWork(
            compute_cycles=self.compute_cycles(instance),
            dram_bytes=dram,
            hit_bytes=hits,
            access_bytes=accesses,
        )
        return work, 0.0
