"""Unmanaged shared-cache baseline (the Section II-C motivation setup).

Every tenant's traffic flows through the transparent shared cache; nothing
partitions bandwidth or cache.  This is the configuration behind Figure 2:
hit rate collapses and memory access grows as tenants are added.

Traffic model: a layer's cache-level accesses are its compulsory tensor
fetches *plus* the scratchpad-tiling refetch traffic.  The refetch volume
comes from the same zero-cache-budget mapping the CaMDN compiler produces
(identical tiling hardware), but where CaMDN retains refetched data in an
exclusive region, the baseline trusts the transparent cache: refetches have
short reuse distances (the layer's working set) and hit when the machine is
lightly loaded, then spill to DRAM as co-tenants inflate stack distances —
the mechanism behind Figure 2's memory-access growth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.transparent import AccessSegment, TransparentCacheModel
from ..config import SoCConfig
from ..models.graph import ModelGraph
from ..sim.task import LayerWork, TaskInstance
from .base import SchedulerPolicy

#: Traffic replication factor per extra core when a model spans NPUs
#: without multicast support (partial input/weight duplication).
CORE_TRAFFIC_REPLICATION = 0.3

#: DRAM efficiency of demand-miss traffic: a lone tenant keeps some row
#: locality; fully interleaved tenants degrade toward the scattered-access
#: floor.  eta(N) = FLOOR + LOCALITY_BONUS / N.
DRAM_EFF_FLOOR = 0.55
DRAM_EFF_LOCALITY_BONUS = 0.30


class SharedCacheBaseline(SchedulerPolicy):
    """Transparent shared cache, equal bandwidth, one core per task."""

    name = "baseline"

    #: Equal split + membership-dependent efficiency: rates only change
    #: when the running set changes, so the engine may cache them.
    dynamic_rates = False

    def __init__(self) -> None:
        super().__init__()
        self._cache_model: Optional[TransparentCacheModel] = None
        self._active_ids: set = set()
        # Layer cost is a pure function of (model, layer, contention
        # factor, core count); the same layers recur once per inference,
        # so the engine's steady state is served from this memo.
        self._work_memo: Dict[tuple, LayerWork] = {}
        #: Tenants currently admitted (dynamic-tenancy bookkeeping).
        self._tenants: Dict[str, ModelGraph] = {}
        self._tenant_admits = 0
        self._tenant_retires = 0

    def attach(self, soc: SoCConfig) -> None:
        super().attach(soc)
        self._cache_model = TransparentCacheModel(soc.cache.total_bytes)
        self._active_ids = set()
        self._work_memo = {}
        self._tenants = {}
        self._tenant_admits = 0
        self._tenant_retires = 0

    # ------------------------------------------------------------------
    # Tenant lifecycle (dynamic tenancy)
    # ------------------------------------------------------------------

    def on_tenant_admit(self, stream_id: str, graph: ModelGraph,
                        now: float) -> None:
        """Warm the model's prepared artifacts (segments, layer cycles)
        off the inference hot path and register the tenant."""
        self._tenants[stream_id] = graph
        self._tenant_admits += 1
        self.prepared_for(graph)

    def on_tenant_retire(self, stream_id: str, now: float) -> None:
        self._tenants.pop(stream_id, None)
        self._tenant_retires += 1

    def stats(self) -> Dict[str, float]:
        return {
            "tenant_admits": float(self._tenant_admits),
            "tenant_retires": float(self._tenant_retires),
        }

    def snapshot_state(self) -> dict:
        # _cache_model and _work_memo are pure (capacity constant /
        # value memo) and rebuilt by attach(); only the tenant and
        # running-set bookkeeping is genuine run state.
        state = super().snapshot_state()
        state.update(
            active_ids=self._active_ids,
            tenants=self._tenants,
            tenant_admits=self._tenant_admits,
            tenant_retires=self._tenant_retires,
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._active_ids = state["active_ids"]
        self._tenants = state["tenants"]
        self._tenant_admits = state["tenant_admits"]
        self._tenant_retires = state["tenant_retires"]

    # ------------------------------------------------------------------

    def _model_segments(self, graph: ModelGraph
                        ) -> Tuple[Tuple[AccessSegment, ...], ...]:
        """Per-layer segments (from the prepared-model fast path)."""
        return self.prepared_for(graph).segments

    # ------------------------------------------------------------------

    def contention_factor(self, instance: TaskInstance) -> float:
        """Effective reuse-distance inflation for ``instance``.

        The engine does not pass the running set into ``begin_layer``, so
        the policy tracks it via task start/end hooks.
        """
        return float(max(len(self._active_ids), 1))

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        self._active_ids.add(instance.instance_id)

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        self._active_ids.discard(instance.instance_id)

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        """Scattered demand misses: row locality decays with tenant count.
        """
        return DRAM_EFF_FLOOR + DRAM_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    def uniform_dram_efficiency(self, num_running: int
                                ) -> Optional[float]:
        return DRAM_EFF_FLOOR + DRAM_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    def begin_layer(self, instance: TaskInstance, now: float
                    ) -> Tuple[Optional[LayerWork], float]:
        factor = self.contention_factor(instance)
        key = (instance.graph.name, instance.layer_index, factor,
               instance.cores)
        work = self._work_memo.get(key)
        if work is not None:
            return work, 0.0
        segments = self._model_segments(
            instance.graph
        )[instance.layer_index]
        dram, hits, accesses = self._cache_model.layer_traffic(
            segments, contention_factor=factor
        )
        if instance.cores > 1:
            replication = 1.0 + CORE_TRAFFIC_REPLICATION * \
                (instance.cores - 1)
            dram *= replication
        work = LayerWork(
            compute_cycles=self.compute_cycles(instance),
            dram_bytes=dram,
            hit_bytes=hits,
            access_bytes=accesses,
        )
        self._work_memo[key] = work
        return work, 0.0

    # ------------------------------------------------------------------

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Equal split, positionally (same floats as the dict path)."""
        if not insts:
            return []
        share = 1.0 / len(insts)
        return [share] * len(insts)
