"""MoCA baseline (Kim et al., HPCA 2023).

MoCA is memory-centric: it dynamically partitions DRAM bandwidth among
co-located DNNs "according to their memory access requirements" while
leaving the shared cache unmanaged.  Our behavioural re-implementation
keeps the transparent-cache traffic model of the unmanaged baseline and
replaces the equal bandwidth split with a demand-proportional allocation
boosted by QoS slack (MoCA throttles tenants that are comfortably ahead of
their targets).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..memory.bwalloc import DemandProportionalPolicy
from ..sim.task import TaskInstance
from .shared_baseline import SharedCacheBaseline

#: Bandwidth partitioning restores part of the row locality (each tenant
#: gets contiguous service windows at the memory controller).
_MOCA_EFF_FLOOR = 0.70
_MOCA_EFF_LOCALITY_BONUS = 0.15


class MoCAScheduler(SharedCacheBaseline):
    """Demand-proportional bandwidth partitioning over a transparent
    cache."""

    name = "moca"

    #: Demand-proportional shares track each task's remaining layer work,
    #: which drains continuously — rates change at every event.
    dynamic_rates = True

    def __init__(self, floor: float = 0.02) -> None:
        super().__init__()
        self._policy = DemandProportionalPolicy(floor=floor)
        # Active tasks with a finite deadline; when zero, the slack
        # throttle degenerates to halving every demand, which cancels
        # out of the proportional allocation (see bandwidth_shares_list).
        self._finite_qos_active = 0
        # Admitted tenants whose model carries a latency target.
        self._deadline_tenants = 0

    def attach(self, soc) -> None:
        super().attach(soc)
        self._finite_qos_active = 0
        self._deadline_tenants = 0

    # ------------------------------------------------------------------
    # Tenant lifecycle: MoCA's slack throttle only matters for tenants
    # whose models carry a latency target, so track that census alongside
    # the baseline's prepared-artifact warm-up.
    # ------------------------------------------------------------------

    def on_tenant_admit(self, stream_id: str, graph, now: float) -> None:
        super().on_tenant_admit(stream_id, graph, now)
        if graph.qos_target_ms:
            self._deadline_tenants += 1

    def on_tenant_retire(self, stream_id: str, now: float) -> None:
        graph = self._tenants.get(stream_id)
        super().on_tenant_retire(stream_id, now)
        if graph is not None and graph.qos_target_ms:
            self._deadline_tenants -= 1

    def stats(self):
        stats = super().stats()
        stats["deadline_tenants"] = float(self._deadline_tenants)
        return stats

    def snapshot_state(self) -> dict:
        # _policy carries constructor config (the floor), which a
        # default-constructed scheduler would not know — ship it too.
        state = super().snapshot_state()
        state.update(
            bw_floor_policy=self._policy,
            finite_qos_active=self._finite_qos_active,
            deadline_tenants=self._deadline_tenants,
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._policy = state["bw_floor_policy"]
        self._finite_qos_active = state["finite_qos_active"]
        self._deadline_tenants = state["deadline_tenants"]

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        super().on_task_start(instance, now)
        if not math.isinf(instance.qos_target_s):
            self._finite_qos_active += 1
            if self._finite_qos_active == 1:
                # The slack throttle just woke up: the share rule is no
                # longer plain demand-proportional.
                self.bump_rate_epoch()

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        super().on_task_end(instance, now)
        if not math.isinf(instance.qos_target_s):
            self._finite_qos_active -= 1
            if self._finite_qos_active == 0:
                self.bump_rate_epoch()

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        return _MOCA_EFF_FLOOR + _MOCA_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    def uniform_dram_efficiency(self, num_running: int
                                ) -> Optional[float]:
        return _MOCA_EFF_FLOOR + _MOCA_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    # ------------------------------------------------------------------

    def rate_kernel(self):
        """With no finite-deadline task active, the slack throttle
        cancels out of the proportional allocation (see
        :meth:`bandwidth_shares_list`) and the rule is plain
        demand-proportional; with the throttle awake the rule is the
        slack-throttled spec (demands halved when slack > 0.5, then
        demand-proportional).  Both are fusable.  The epoch bumps in
        the task hooks re-trigger resolution at each transition."""
        if self._finite_qos_active:
            return ("slack_throttled", self._policy.floor)
        return ("demand_prop", self._policy.floor)

    def _demand(self, instance: TaskInstance) -> float:
        """Bytes/s the instance could consume: remaining layer DRAM work
        over the layer's compute-bound time (memory-bound layers demand
        more than their fair share)."""
        compute_s = max(
            instance.rem_compute_cycles / self.soc.npu.frequency_hz,
            1e-9,
        )
        return max(instance.rem_dram_bytes, 1.0) / compute_s

    def _slack(self, instance: TaskInstance, now: float) -> float:
        est = self.est_isolated_latency_s(instance)
        return self.slack_of(instance, now, est)

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        if not running:
            return {}
        demands = {
            iid: self._demand(inst) for iid, inst in running.items()
        }
        # MoCA throttles tenants with generous slack: halve the demand of
        # tasks more than 50 % ahead of their deadline.
        for iid, inst in running.items():
            if self._slack(inst, now) > 0.5:
                demands[iid] *= 0.5
        allocation = self._policy.allocate(demands)
        return dict(allocation.shares)

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Positional fast path: same demand/slack arithmetic as the dict
        path, with remaining work read from the kernel arrays and the
        demand total accumulated in insertion order."""
        if not insts:
            return []
        freq = self.soc.npu.frequency_hz
        if not self._finite_qos_active:
            # No deadlines anywhere: every slack is 1.0 > 0.5, so the
            # throttle halves every demand.  Halving all demands scales
            # the proportional total by exactly 0.5 (power-of-two, no
            # rounding), leaving every quotient — and thus every share —
            # bit-identical, so skip it.
            demands = [
                max(rem_d, 1.0) / max(rem_c / freq, 1e-9)
                for rem_c, rem_d in zip(rem_compute, rem_dram)
            ]
            return self._policy.allocate_list(demands)
        slack_of = self.slack_of
        est_of = self.est_isolated_latency_s
        demands = []
        for inst, rem_c, rem_d in zip(insts, rem_compute, rem_dram):
            compute_s = max(rem_c / freq, 1e-9)
            demand = max(rem_d, 1.0) / compute_s
            # MoCA throttles tenants with generous slack: halve the
            # demand of tasks more than 50 % ahead of their deadline.
            if math.isinf(inst.qos_target_s):
                slack = 1.0
            else:
                slack = slack_of(inst, now, est_of(inst))
            if slack > 0.5:
                demand *= 0.5
            demands.append(demand)
        return self._policy.allocate_list(demands)
