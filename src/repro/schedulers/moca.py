"""MoCA baseline (Kim et al., HPCA 2023).

MoCA is memory-centric: it dynamically partitions DRAM bandwidth among
co-located DNNs "according to their memory access requirements" while
leaving the shared cache unmanaged.  Our behavioural re-implementation
keeps the transparent-cache traffic model of the unmanaged baseline and
replaces the equal bandwidth split with a demand-proportional allocation
boosted by QoS slack (MoCA throttles tenants that are comfortably ahead of
their targets).
"""

from __future__ import annotations

from typing import Dict

from ..memory.bwalloc import DemandProportionalPolicy
from ..sim.task import TaskInstance
from .shared_baseline import SharedCacheBaseline

#: Bandwidth partitioning restores part of the row locality (each tenant
#: gets contiguous service windows at the memory controller).
_MOCA_EFF_FLOOR = 0.70
_MOCA_EFF_LOCALITY_BONUS = 0.15


class MoCAScheduler(SharedCacheBaseline):
    """Demand-proportional bandwidth partitioning over a transparent
    cache."""

    name = "moca"

    #: Demand-proportional shares track each task's remaining layer work,
    #: which drains continuously — rates change at every event.
    dynamic_rates = True

    def __init__(self, floor: float = 0.02) -> None:
        super().__init__()
        self._policy = DemandProportionalPolicy(floor=floor)

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        return _MOCA_EFF_FLOOR + _MOCA_EFF_LOCALITY_BONUS / max(
            num_running, 1
        )

    # ------------------------------------------------------------------

    def _demand(self, instance: TaskInstance) -> float:
        """Bytes/s the instance could consume: remaining layer DRAM work
        over the layer's compute-bound time (memory-bound layers demand
        more than their fair share)."""
        compute_s = max(
            instance.rem_compute_cycles / self.soc.npu.frequency_hz,
            1e-9,
        )
        return max(instance.rem_dram_bytes, 1.0) / compute_s

    def _slack(self, instance: TaskInstance, now: float) -> float:
        est = self.est_isolated_latency_s(instance)
        return self.slack_of(instance, now, est)

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        if not running:
            return {}
        demands = {
            iid: self._demand(inst) for iid, inst in running.items()
        }
        # MoCA throttles tenants with generous slack: halve the demand of
        # tasks more than 50 % ahead of their deadline.
        for iid, inst in running.items():
            if self._slack(inst, now) > 0.5:
                demands[iid] *= 0.5
        allocation = self._policy.allocate(demands)
        return dict(allocation.shares)
