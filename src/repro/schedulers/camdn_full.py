"""CaMDN(Full): the complete architecture-scheduling co-design.

Cache-aware mapping candidates + Algorithm 1 dynamic allocation over
model-exclusive, NPU-controlled regions.  In QoS mode the policy also runs
AuRORA's bandwidth and NPU allocation (the paper's Figure 9 setup), with
multicast keeping multi-core traffic flat.
"""

from __future__ import annotations

from .camdn_common import CaMDNSchedulerBase


class CaMDNFullScheduler(CaMDNSchedulerBase):
    """Dynamic cache allocation over the CaMDN architecture."""

    name = "camdn-full"
    mode = "full"
