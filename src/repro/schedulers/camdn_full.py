"""CaMDN(Full): the complete architecture-scheduling co-design.

Cache-aware mapping candidates + Algorithm 1 dynamic allocation over
model-exclusive, NPU-controlled regions.  In QoS mode the policy also runs
AuRORA's bandwidth and NPU allocation (the paper's Figure 9 setup), with
multicast keeping multi-core traffic flat.
"""

from __future__ import annotations

from .camdn_common import CaMDNSchedulerBase


class CaMDNFullScheduler(CaMDNSchedulerBase):
    """Dynamic cache allocation over the CaMDN architecture."""

    name = "camdn-full"
    mode = "full"

    def __init__(self, qos_mode: bool = False, **kwargs) -> None:
        super().__init__(qos_mode=qos_mode, **kwargs)
        if qos_mode:
            # The Figure 9 integration is its own row everywhere it
            # appears (results, snapshots, ``make_scheduler``); carrying
            # the faithful name lets a snapshot of a QoS run resume
            # through ``make_scheduler(snapshot.policy)`` unchanged.
            self.name = "camdn-qos"
