"""Scheduler policy interface.

A policy answers four questions for the fluid engine:

1. how many cores an arriving inference gets (``cores_for``);
2. what executing one layer costs (``begin_layer`` — compute cycles and
   DRAM bytes, possibly after waiting for cache pages);
3. how the DRAM bandwidth splits across running tasks
   (``bandwidth_shares``);
4. what bookkeeping happens at layer/inference boundaries
   (``on_layer_end`` / ``on_task_end``).

``begin_layer`` may return ``(None, timeout)`` meaning the task must wait
for cache pages; the engine then calls ``poll_layer`` whenever pages might
have been freed and ``timeout_layer`` when the wait budget expires
(the downgrade path of Figure 6).
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SoCConfig
from ..core.prepared import PreparedModel, prepare_model
from ..models.graph import ModelGraph
from ..npu.systolic import SystolicModel
from ..sim.task import LayerWork, TaskInstance

#: Added speedup per extra core when a model spans multiple NPUs
#: (sub-linear, matching AuRORA's reported fission efficiency).
PARALLEL_EFFICIENCY = 0.85


class SchedulerPolicy(abc.ABC):
    """Base class for all scheduling policies."""

    #: Paper-facing policy name (overridden by subclasses).
    name = "abstract"

    #: Whether per-task rates can change *between* engine events.  ``True``
    #: (the safe default) makes the engine recompute bandwidth shares after
    #: every event.  Policies whose shares and DRAM efficiency depend only
    #: on the running-set membership (e.g. the equal-split default) may set
    #: this to ``False``: the engine then keeps cached rates valid across
    #: layer-work changes and only invalidates them on explicit
    #: membership-change notifications, which is what enables the
    #: steady-interval fast-forward.
    dynamic_rates = True

    #: The policy's bandwidth shares are strictly positive by
    #: construction (e.g. a proportional split with a positive floor).
    #: The engine then skips its per-event zero-bandwidth audit — purely
    #: a dropped assertion, never a behavior change.
    positive_shares = False

    #: Monotone counter bumped (via :meth:`bump_rate_epoch`) whenever
    #: the *rule* that produces this policy's shares changes shape —
    #: e.g. MoCA's slack throttle waking up when the first
    #: finite-deadline task arrives.  The engine re-consults
    #: :meth:`rate_kernel` on every epoch change, so fused batches span
    #: exactly the events between rule changes.
    rate_epoch = 0

    def __init__(self) -> None:
        self.soc: Optional[SoCConfig] = None
        self.systolic: Optional[SystolicModel] = None
        self._prepared: Dict[str, PreparedModel] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, soc: SoCConfig) -> None:
        """Bind the policy to an SoC before a simulation run."""
        self.soc = soc
        self.systolic = SystolicModel(soc.npu)
        self._prepared = {}

    def snapshot_state(self) -> dict:
        """Picklable mid-run state for engine checkpoints.

        Subclasses extend the returned dict with every piece of state a
        resumed run needs to continue byte-identically.  Pure memos
        (prepared models, layer-work caches) are excluded by contract —
        they rebuild lazily with identical values.  The blob is pickled
        as part of one engine-wide payload, so object identities shared
        with engine state (task instances, scheduler contexts) survive
        the round trip.
        """
        return {"rate_epoch": self.rate_epoch}

    def restore_state(self, state: dict) -> None:
        """Install :meth:`snapshot_state` output after :meth:`attach`.

        The call order is fixed: construct the policy, ``attach`` it to
        the snapshot's SoC (rebuilding the pure run-scoped helpers),
        then ``restore_state`` to overwrite the mutable run state.
        """
        self.rate_epoch = state["rate_epoch"]

    def prepared_for(self, graph: ModelGraph) -> PreparedModel:
        """The graph's prepared artifacts on the attached SoC.

        The process-wide prepared cache is fronted by a per-policy dict
        keyed on the graph name so the hot path costs one string hash
        instead of re-hashing the SoC config on every call.
        """
        prepared = self._prepared.get(graph.name)
        if prepared is None or prepared.graph is not graph:
            prepared = prepare_model(graph, self.soc)
            self._prepared[graph.name] = prepared
        return prepared

    def on_tenant_admit(self, stream_id: str, graph: ModelGraph,
                        now: float) -> None:
        """A tenant (stream) joined the scenario.

        Fired once per stream before its first inference dispatches —
        at engine start for the initial tenant set, and mid-run for
        tenants with a ``join_s`` in dynamic-tenancy scenarios.  The
        default is a no-op; policies use it to warm per-model state
        (prepared artifacts, mapping files) off the inference hot path.
        """

    def on_tenant_retire(self, stream_id: str, now: float) -> None:
        """A tenant left the scenario (scheduled departure or natural
        exhaustion).  Any in-flight inference has already been ended or
        cancelled through the per-task hooks, so per-task resources
        (cache pages, regions) are released before this fires.  The
        default is a no-op."""

    def cores_for(self, instance: TaskInstance, free_cores: int) -> int:
        """Cores granted to an arriving inference (default: one)."""
        return 1

    def on_capacity_change(self, num_cores: int, now: float) -> None:
        """The schedulable NPU core set changed size (fault injection:
        cores went offline or came back).

        The engine has already preempted any instance whose cores
        vanished (through :meth:`on_task_end`, like a departing tenant)
        and invalidates every cached rate, so share-based policies
        degrade gracefully with no action here.  The default is a
        no-op; policies override it to track capacity-dependent state.
        """

    def on_pages_retired(self, count: int, rng_key: str,
                         now: float) -> Tuple[int, ...]:
        """``count`` SPM pages suffered an ECC fault (fault injection).

        ``rng_key`` seeds victim selection — a pure function of the
        fault spec, so every engine path retires the same pages.
        Policies that model the NPU cache (CaMDN) evacuate and
        permanently retire the victims, returning the retired pcpns;
        policies without a cache model ignore the fault (default: no
        pages retired).
        """
        return ()

    def on_task_start(self, instance: TaskInstance, now: float) -> None:
        """An inference acquired its core(s) and is about to map layers."""

    # ------------------------------------------------------------------
    # Layer protocol
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def begin_layer(self, instance: TaskInstance, now: float
                    ) -> Tuple[Optional[LayerWork], float]:
        """Cost of the instance's current layer, or ``(None, timeout)`` to
        wait for cache pages."""

    def poll_layer(self, instance: TaskInstance, now: float
                   ) -> Tuple[Optional[LayerWork], float]:
        """Re-attempt a waiting layer after pages may have been freed
        (no downgrade).  Default: re-run ``begin_layer``."""
        return self.begin_layer(instance, now)

    def timeout_layer(self, instance: TaskInstance, now: float
                      ) -> Tuple[Optional[LayerWork], float]:
        """The wait budget expired; policies with degradable requests
        downgrade here.  Default: retry as a poll."""
        return self.begin_layer(instance, now)

    def on_layer_end(self, instance: TaskInstance, now: float) -> None:
        """The instance finished its current layer."""

    def on_task_end(self, instance: TaskInstance, now: float) -> None:
        """The instance finished its last layer and releases its cores."""

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------

    def dram_efficiency(self, instance: TaskInstance,
                        num_running: int) -> float:
        """Fraction of the allocated DRAM bandwidth actually sustained.

        Real DRAM delivers its peak only to row-buffer-friendly streams.
        A transparent cache turns tenant traffic into scattered 64 B demand
        misses whose interleaving across tenants destroys row locality —
        the latency amplification the paper's DRAMsim3 backend exhibits and
        the reason latency reductions in Figure 8 (34-42 %) exceed traffic
        reductions (16-38 %).  Policies override this with their achievable
        efficiency; the default is ideal (1.0).
        """
        return 1.0

    def uniform_dram_efficiency(self, num_running: int
                                ) -> Optional[float]:
        """Shared efficiency when it does not vary across instances.

        Every shipped policy's :meth:`dram_efficiency` depends only on the
        running-set width, so the engine can apply one value to the whole
        set instead of N method calls per event.  Returning ``None`` (the
        default) keeps the per-instance calls.  A policy overriding
        :meth:`dram_efficiency` with per-instance behaviour must leave
        this returning ``None``.
        """
        return None

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        """Fractional DRAM bandwidth per running instance (sums <= 1).

        Default: equal split.
        """
        if not running:
            return {}
        share = 1.0 / len(running)
        return {instance_id: share for instance_id in running}

    def bump_rate_epoch(self) -> None:
        """Advance :attr:`rate_epoch` (the share rule changed shape)."""
        self.rate_epoch += 1

    def rate_kernel(self) -> Optional[tuple]:
        """Declarative description of the share rule, when expressible.

        A policy whose :meth:`bandwidth_shares_list` currently reduces
        to a closed form the engine can fuse with the kernel step may
        return a spec tuple; ``None`` (the default) keeps the split
        recompute/step path.  Every spec implies ``demand =
        max(rem_dram, 1) / max(rem_compute / freq, 1e-9)`` and a
        uniform DRAM efficiency (:meth:`uniform_dram_efficiency` must
        not return ``None``).  Supported specs:

        * ``("demand_prop", floor)`` — demand-proportional shares with
          a starvation floor, per
          :class:`~repro.memory.bwalloc.DemandProportionalPolicy`.
        * ``("slack_weighted", urgency, floor)`` — AuRORA's rule:
          ``weight = max(demand, 1) * exp(-urgency *
          clamp(slack, ±20))`` with ``slack`` from :meth:`slack_of`
          (1.0 for no-deadline instances), normalized per
          :class:`~repro.memory.bwalloc.SlackWeightedPolicy`.
        * ``("slack_throttled", floor)`` — MoCA's finite-deadline rule:
          demands halved when ``slack > 0.5``, then demand-proportional.

        The slack specs make the engine maintain per-instance slack
        inputs (arrival, deadline, est-isolated-latency, layer
        progress) in kernel SoA arrays; :meth:`slack_of` must therefore
        stay a pure function of those inputs and ``now``.

        The returned spec must hold until the policy bumps
        :attr:`rate_epoch`; the fused implementations are bit-identical
        to the split path, so the spec is purely a speedup contract.
        """
        return None

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Kernel fast path for :meth:`bandwidth_shares`.

        The engine's SoA kernel calls this with the running instances and
        their remaining work in insertion order; a policy that can compute
        its shares positionally returns a list aligned with ``insts`` and
        skips the per-event dict round-trip.  Returning ``None`` (the
        default) falls back to the dict path.

        Contract: the returned floats must be bit-identical to what
        :meth:`bandwidth_shares` would produce for the same running set —
        element-wise arithmetic may be reshaped, but every order-sensitive
        reduction (demand totals, weight normalizations) must accumulate
        in insertion order.  A subclass that overrides
        :meth:`bandwidth_shares` with new semantics MUST override this
        method as well (or return ``None``), otherwise the engine would
        keep using the parent's fast path.
        """
        return None

    # ------------------------------------------------------------------
    # Helpers shared by concrete policies
    # ------------------------------------------------------------------

    def compute_cycles(self, instance: TaskInstance) -> float:
        """Cycles of the current layer on the instance's core group."""
        prepared = self.prepared_for(instance.graph)
        cycles = prepared.layer_cycles[instance.layer_index]
        if instance.cores > 1:
            speedup = 1.0 + PARALLEL_EFFICIENCY * (instance.cores - 1)
            cycles = cycles / speedup
        return float(cycles)

    def est_isolated_latency_s(self, instance: TaskInstance) -> float:
        """Single-tenant latency estimate for slack computations."""
        return self.prepared_for(instance.graph).isolated_latency_s

    def slack_of(self, instance: TaskInstance, now: float,
                 est_total_latency_s: float) -> float:
        """Normalized QoS slack used by slack-aware policies.

        Positive: ahead of the deadline; negative: behind.
        """
        if math.isinf(instance.qos_target_s):
            return 1.0
        progress = (
            instance.layer_index / max(instance.num_layers, 1)
        )
        expected_finish = instance.arrival_time + (
            est_total_latency_s * (1.0 - progress)
        ) + (now - instance.arrival_time)
        slack = instance.arrival_time + instance.qos_target_s \
            - expected_finish
        return slack / instance.qos_target_s

    def stats(self) -> Dict[str, float]:
        """Policy-specific counters for reports (default: none)."""
        return {}
