"""AuRORA baseline (Kim et al., MICRO 2023).

AuRORA virtualizes the accelerator pool: it co-allocates NPU cores and
memory bandwidth toward per-tenant latency targets.  Behaviourally:

* bandwidth follows a slack-weighted allocation — tenants behind their
  deadline get exponentially boosted shares (which is how AuRORA reaches
  high SLA rates at a fairness cost under tight targets, reproduced in
  Figure 9);
* a tenant whose isolated latency estimate is too close to its target is
  granted a second core when one is free; without CaMDN's multicast, the
  extra core replicates part of the traffic.

The shared cache remains transparent and unmanaged, exactly the gap CaMDN
attacks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..memory.bwalloc import SlackWeightedPolicy
from ..sim.task import TaskInstance
from .moca import MoCAScheduler

#: Grant a second core when estimated isolated latency exceeds this
#: fraction of the QoS target.
_CORE_BOOST_THRESHOLD = 0.7

#: Upper bound on cores per tenant (AuRORA's fission granularity here).
_MAX_CORES = 2


class AuRORAScheduler(MoCAScheduler):
    """Slack-driven NPU + bandwidth co-allocation, transparent cache."""

    name = "aurora"

    def __init__(self, urgency: float = 3.0, floor: float = 0.02,
                 allow_multi_core: bool = True) -> None:
        super().__init__(floor=floor)
        self._bw_policy = SlackWeightedPolicy(urgency=urgency, floor=floor)
        self.allow_multi_core = allow_multi_core

    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update(
            slack_bw_policy=self._bw_policy,
            allow_multi_core=self.allow_multi_core,
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._bw_policy = state["slack_bw_policy"]
        self.allow_multi_core = state["allow_multi_core"]

    # ------------------------------------------------------------------

    def cores_for(self, instance: TaskInstance, free_cores: int) -> int:
        if not self.allow_multi_core or free_cores < 2:
            return 1
        if instance.qos_target_s == float("inf"):
            return 1
        est = self.est_isolated_latency_s(instance)
        if est > _CORE_BOOST_THRESHOLD * instance.qos_target_s:
            return min(_MAX_CORES, free_cores)
        return 1

    def rate_kernel(self):
        """Always the slack-weighted spec: the exponential weight
        applies even when every slack is the no-deadline 1.0 (which is
        not float-identical to the plain demand-proportional split MoCA
        degenerates to, so AuRORA never returns ``demand_prop``)."""
        return (
            "slack_weighted",
            self._bw_policy.urgency,
            self._bw_policy.floor,
        )

    def bandwidth_shares(self, running: Dict[str, TaskInstance],
                         now: float) -> Dict[str, float]:
        if not running:
            return {}
        demands = {
            iid: self._demand(inst) for iid, inst in running.items()
        }
        slacks = {
            iid: self._slack(inst, now) for iid, inst in running.items()
        }
        allocation = self._bw_policy.allocate(demands, slacks)
        return dict(allocation.shares)

    def bandwidth_shares_list(
        self,
        insts: Sequence[TaskInstance],
        rem_compute: Sequence[float],
        rem_dram: Sequence[float],
        now: float,
    ) -> Optional[List[float]]:
        """Positional fast path mirroring the slack-weighted dict path."""
        if not insts:
            return []
        freq = self.soc.npu.frequency_hz
        slack_of = self.slack_of
        est_of = self.est_isolated_latency_s
        demands = []
        slacks = []
        for inst, rem_c, rem_d in zip(insts, rem_compute, rem_dram):
            compute_s = max(rem_c / freq, 1e-9)
            demands.append(max(rem_d, 1.0) / compute_s)
            if math.isinf(inst.qos_target_s):
                slacks.append(1.0)
            else:
                slacks.append(slack_of(inst, now, est_of(inst)))
        return self._bw_policy.allocate_list(demands, slacks)
