"""CaMDN(HW-only): the architecture without dynamic cache scheduling.

The paper's ablation (Figure 7): model-exclusive NPU-controlled regions
exist, but cache capacity is split *equally* among active NPUs and never
adjusted at runtime.  The gap between this variant and CaMDN(Full)
quantifies the contribution of cache-aware mapping selection plus
Algorithm 1 (an average 1.18x per the paper).
"""

from __future__ import annotations

from .camdn_common import CaMDNSchedulerBase


class CaMDNHWOnlyScheduler(CaMDNSchedulerBase):
    """Static equal cache regions over the CaMDN architecture."""

    name = "camdn-hw"
    mode = "hw_only"
