"""Scheduling policies: prior-work baselines and the two CaMDN variants."""

from .base import SchedulerPolicy
from .shared_baseline import SharedCacheBaseline
from .moca import MoCAScheduler
from .aurora import AuRORAScheduler
from .camdn_hw import CaMDNHWOnlyScheduler
from .camdn_full import CaMDNFullScheduler

__all__ = [
    "SchedulerPolicy",
    "SharedCacheBaseline",
    "MoCAScheduler",
    "AuRORAScheduler",
    "CaMDNHWOnlyScheduler",
    "CaMDNFullScheduler",
]


def make_scheduler(name: str, **kwargs) -> SchedulerPolicy:
    """Build a scheduler by its paper name.

    Accepted names: ``"baseline"``, ``"moca"``, ``"aurora"``,
    ``"camdn-hw"``, ``"camdn-full"``.
    """
    registry = {
        "baseline": SharedCacheBaseline,
        "moca": MoCAScheduler,
        "aurora": AuRORAScheduler,
        "camdn-hw": CaMDNHWOnlyScheduler,
        "camdn-full": CaMDNFullScheduler,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)
