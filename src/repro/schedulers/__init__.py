"""Scheduling policies: prior-work baselines and the two CaMDN variants."""

from .base import SchedulerPolicy
from .shared_baseline import SharedCacheBaseline
from .moca import MoCAScheduler
from .aurora import AuRORAScheduler
from .camdn_hw import CaMDNHWOnlyScheduler
from .camdn_full import CaMDNFullScheduler

__all__ = [
    "SchedulerPolicy",
    "SharedCacheBaseline",
    "MoCAScheduler",
    "AuRORAScheduler",
    "CaMDNHWOnlyScheduler",
    "CaMDNFullScheduler",
]


def make_scheduler(name: str, **kwargs) -> SchedulerPolicy:
    """Build a scheduler by its paper name.

    Accepted names: ``"baseline"``, ``"moca"``, ``"aurora"``,
    ``"camdn-hw"``, ``"camdn-full"``, ``"camdn-qos"`` (the Figure 9
    integration: CaMDN(Full) with AuRORA's slack-weighted bandwidth and
    core co-allocation).
    """
    if name == "camdn-qos":
        return CaMDNFullScheduler(qos_mode=True, **kwargs)
    registry = {
        "baseline": SharedCacheBaseline,
        "moca": MoCAScheduler,
        "aurora": AuRORAScheduler,
        "camdn-hw": CaMDNHWOnlyScheduler,
        "camdn-full": CaMDNFullScheduler,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: "
            f"{sorted(registry) + ['camdn-qos']}"
        ) from None
    return cls(**kwargs)
