"""NPU DMA: turns cache-map entries into NEC request streams.

The DMA engine is the NPU-side client of the NEC dual interface (Figure
5(a)): given a mapping candidate's cache map, it synthesizes the per-line
request stream — cached tensors translate vcaddrs through the NPU's CPT,
bypassed tensors go straight to memory with bypass semantics, and
multi-core groups use multicast variants.

``DMAOp`` is the NPU-visible request vocabulary; it is deliberately a thin
alias of :class:`~repro.core.nec.NECOp` so tests can assert the exact
semantics each tensor uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..config import CacheConfig
from ..core.cpt import CachePageTable
from ..core.mct import CacheMapEntry
from ..core.nec import NECOp, NECRequest
from ..errors import CacheAddressError

#: NPU-visible operation vocabulary (alias of the NEC semantics).
DMAOp = NECOp


@dataclass(frozen=True)
class DMARequest:
    """One line-granular DMA descriptor before NEC routing.

    Attributes:
        op: requested semantic.
        vcaddr: virtual cache address (cached ops) or ``None``.
        mem_addr: memory line address (DRAM-touching ops) or ``None``.
        data: payload for writes.
        group_size: multicast group size.
    """

    op: DMAOp
    vcaddr: Optional[int] = None
    mem_addr: Optional[int] = None
    data: Optional[int] = None
    group_size: int = 1


class DMAEngine:
    """Synthesizes and issues NEC request streams for one NPU."""

    def __init__(self, cache: CacheConfig, cpt: CachePageTable) -> None:
        self.cache = cache
        self.cpt = cpt

    # ------------------------------------------------------------------

    def requests_for_entry(
        self,
        entry: CacheMapEntry,
        mem_base_line: int,
        load: bool,
        group_size: int = 1,
    ) -> Iterator[DMARequest]:
        """Yield the line requests moving one cache-map tensor.

        Args:
            entry: the tensor's cache-map row.
            mem_base_line: the tensor's base line address in DRAM.
            load: True to move data toward the NPU, False to store results.
            group_size: NPUs sharing the data (>1 selects multicast reads).
        """
        line = self.cache.line_bytes
        if entry.bypass:
            num_lines = 1  # bypassed rows carry no size; callers set count
            op = self._bypass_op(load, group_size)
            for i in range(num_lines):
                yield DMARequest(
                    op=op,
                    mem_addr=mem_base_line + i,
                    data=0 if not load else None,
                    group_size=group_size,
                )
            return
        num_lines = max(1, entry.size // line)
        for i in range(num_lines):
            vcaddr = entry.vcaddr + i * line
            if load:
                op = (
                    DMAOp.MULTICAST_READ if group_size > 1
                    else DMAOp.READ_LINE
                )
                yield DMARequest(op=op, vcaddr=vcaddr,
                                 group_size=group_size)
            else:
                yield DMARequest(op=DMAOp.WRITE_LINE, vcaddr=vcaddr, data=0)

    @staticmethod
    def _bypass_op(load: bool, group_size: int) -> DMAOp:
        if load:
            return (
                DMAOp.MULTICAST_BYPASS_READ if group_size > 1
                else DMAOp.BYPASS_READ
            )
        return DMAOp.BYPASS_WRITE

    # ------------------------------------------------------------------

    def to_nec_request(self, request: DMARequest) -> NECRequest:
        """Translate a DMA descriptor into a routed NEC request."""
        paddr = None
        if request.vcaddr is not None:
            paddr = self.cpt.translate(request.vcaddr)
        if request.vcaddr is None and request.mem_addr is None:
            raise CacheAddressError("DMA request with no address")
        return NECRequest(
            op=request.op,
            paddr=paddr,
            mem_addr=request.mem_addr,
            data=request.data,
            group_size=request.group_size,
        )

    def issue(self, requests: List[DMARequest], fabric) -> List[tuple]:
        """Issue descriptors through an :class:`~repro.core.nec.NECFabric`;
        returns each read's delivered values (write ops yield ``None``)."""
        results = []
        for request in requests:
            results.append(fabric.handle(self.to_nec_request(request)))
        return results
