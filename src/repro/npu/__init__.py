"""NPU substrate: systolic-array timing, scratchpad, DMA and core models."""

from .systolic import SystolicModel, compute_cycles
from .scratchpad import Scratchpad, ScratchpadSegment
from .dma import DMAEngine, DMARequest, DMAOp
from .npu_core import NPUCore

__all__ = [
    "SystolicModel",
    "compute_cycles",
    "Scratchpad",
    "ScratchpadSegment",
    "DMAEngine",
    "DMARequest",
    "DMAOp",
    "NPUCore",
]
