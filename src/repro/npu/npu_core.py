"""NPU core: PE array + scratchpad + CPT + DMA behind one object.

The core is the unit the runtime dispatches tasks to.  It owns the
hardware CPT (one per NPU, Section III-B3) and a DMA engine bound to it,
plus busy/assignment state the multi-tenant scheduler manipulates.
"""

from __future__ import annotations

from typing import Optional

from ..config import SoCConfig
from ..core.cpt import CachePageTable
from ..errors import SimulationError
from .dma import DMAEngine
from .scratchpad import Scratchpad
from .systolic import SystolicModel


class NPUCore:
    """One NPU core of the SoC."""

    def __init__(self, core_id: int, soc: SoCConfig) -> None:
        self.core_id = core_id
        self.soc = soc
        self.systolic = SystolicModel(soc.npu)
        self.scratchpad = Scratchpad(soc.npu.scratchpad_bytes)
        self.cpt = CachePageTable(soc.cache)
        self.dma = DMAEngine(soc.cache, self.cpt)
        self._task_id: Optional[str] = None

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._task_id is not None

    @property
    def task_id(self) -> Optional[str]:
        return self._task_id

    def assign(self, task_id: str) -> None:
        """Bind a task to this core.

        Raises:
            SimulationError: the core is already running another task.
        """
        if self._task_id is not None and self._task_id != task_id:
            raise SimulationError(
                f"core {self.core_id} busy with {self._task_id}"
            )
        self._task_id = task_id

    def release(self) -> None:
        """Unbind the current task and clear per-task state."""
        self._task_id = None
        self.scratchpad.reset()

    def adopt_region_cpt(self, cpt: CachePageTable) -> None:
        """Point this core's address translation at a model region's CPT
        (the "modify CPT" step after a successful page request)."""
        self.cpt = cpt
        self.dma = DMAEngine(self.soc.cache, cpt)
