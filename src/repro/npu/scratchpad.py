"""Private NPU scratchpad model (Table II: 256 KiB per core).

The scratchpad is software-managed: the layer mapper reserves named
segments for weight, input and output tiles.  This module provides a simple
first-fit segment allocator so mapping candidates can be validated against
the real capacity constraint and integration tests can exercise
allocate/free cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError, MappingError


@dataclass(frozen=True)
class ScratchpadSegment:
    """A reserved region of scratchpad.

    Attributes:
        name: segment label (e.g. ``"weight_tile"``).
        offset: byte offset inside the scratchpad.
        size: segment size in bytes.
    """

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class Scratchpad:
    """First-fit segment allocator over a fixed-capacity scratchpad."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("scratchpad capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._segments: Dict[str, ScratchpadSegment] = {}

    @property
    def used_bytes(self) -> int:
        """Total bytes currently reserved."""
        return sum(seg.size for seg in self._segments.values())

    @property
    def free_bytes(self) -> int:
        """Total bytes not reserved (may be fragmented)."""
        return self.capacity_bytes - self.used_bytes

    def segments(self) -> List[ScratchpadSegment]:
        """Current segments sorted by offset."""
        return sorted(self._segments.values(), key=lambda s: s.offset)

    def allocate(self, name: str, size: int) -> ScratchpadSegment:
        """Reserve ``size`` bytes under ``name`` (first fit).

        Raises:
            MappingError: the name is taken or no gap is large enough.
        """
        if size <= 0:
            raise MappingError(f"segment {name!r}: size must be positive")
        if name in self._segments:
            raise MappingError(f"segment {name!r} already allocated")
        offset = 0
        for seg in self.segments():
            if seg.offset - offset >= size:
                break
            offset = seg.end
        if offset + size > self.capacity_bytes:
            raise MappingError(
                f"segment {name!r} ({size} B) does not fit; "
                f"{self.free_bytes} B free of {self.capacity_bytes}"
            )
        segment = ScratchpadSegment(name, offset, size)
        self._segments[name] = segment
        return segment

    def free(self, name: str) -> None:
        """Release the segment named ``name``.

        Raises:
            MappingError: no such segment.
        """
        if name not in self._segments:
            raise MappingError(f"segment {name!r} is not allocated")
        del self._segments[name]

    def get(self, name: str) -> Optional[ScratchpadSegment]:
        """Look up a segment by name (``None`` if absent)."""
        return self._segments.get(name)

    def reset(self) -> None:
        """Release every segment (layer boundary)."""
        self._segments.clear()

    def fits(self, *sizes: int) -> bool:
        """Would segments of the given sizes fit in an empty scratchpad?"""
        return sum(sizes) <= self.capacity_bytes
