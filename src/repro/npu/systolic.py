"""Weight-stationary systolic-array timing model (SCALE-Sim style).

A ``rows x cols`` weight-stationary array processes a GEMM
``[M, K] x [K, N]`` in passes: each pass loads a ``rows x cols`` weight tile
(``K`` mapped to rows, ``N`` to columns), streams ``M`` activations through,
and drains partial sums.  Pass latency is ``M + rows + cols - 2`` cycles and
``ceil(K/rows) * ceil(N/cols)`` passes are needed.

This captures the first-order behaviour the paper's experiments depend on:
depth-wise convolutions (tiny ``K``) waste array rows, so their time is
bounded by activation streaming rather than MACs, making them memory-
dominated — exactly the workloads CaMDN accelerates most (Figure 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import NPUConfig
from ..models.layers import LayerKind, LayerSpec

#: Vector (SIMD) lanes used for pooling / element-wise layers.
_VECTOR_LANES = 32


@dataclass(frozen=True)
class SystolicModel:
    """Timing model bound to one NPU configuration."""

    npu: NPUConfig

    def gemm_cycles(self, m: int, n: int, k: int) -> int:
        """Cycles for one dense GEMM ``[m,k] x [k,n]`` (weight-stationary)."""
        rows, cols = self.npu.pe_rows, self.npu.pe_cols
        passes = math.ceil(k / rows) * math.ceil(n / cols)
        return passes * (m + rows + cols - 2)

    def layer_cycles(self, layer: LayerSpec) -> int:
        """Cycles to execute ``layer`` on one NPU core."""
        if layer.kind in (LayerKind.POOL, LayerKind.ELEMWISE):
            # Vector unit: one lane-wide operation per cycle.
            return math.ceil(layer.macs / _VECTOR_LANES)
        cycles = layer.groups * self.gemm_cycles(layer.m, layer.n, layer.k)
        if layer.kind is LayerKind.DWCONV:
            # Depth-wise kernels also pay an im2col/regroup overhead on the
            # activation path that the pure pass formula misses.
            cycles = math.ceil(cycles / self.npu.dwconv_efficiency) \
                if self.npu.dwconv_efficiency < 1.0 else cycles
        return max(cycles, 1)

    def layer_time_s(self, layer: LayerSpec, num_cores: int = 1,
                     parallel_efficiency: float = 0.85) -> float:
        """Wall-clock compute time for ``layer`` on ``num_cores`` cores.

        Multi-core execution tiles the output space across cores; scaling is
        sub-linear (``parallel_efficiency`` per added core, matching the
        diminishing returns AuRORA reports for core fission).
        """
        cycles = self.layer_cycles(layer)
        if num_cores <= 1:
            effective = float(cycles)
        else:
            speedup = 1.0 + parallel_efficiency * (num_cores - 1)
            effective = cycles / speedup
        return effective / self.npu.frequency_hz

    def model_cycles(self, layers) -> int:
        """Total single-core cycles for an iterable of layers."""
        return sum(self.layer_cycles(layer) for layer in layers)

    def utilization(self, layer: LayerSpec) -> float:
        """Achieved MACs/cycle over peak MACs/cycle for ``layer``."""
        cycles = self.layer_cycles(layer)
        peak = self.npu.macs_per_cycle
        return layer.macs / (cycles * peak)


def compute_cycles(layer: LayerSpec, npu: NPUConfig | None = None) -> int:
    """Convenience wrapper: cycles for ``layer`` under ``npu`` (or default)."""
    return SystolicModel(npu or NPUConfig()).layer_cycles(layer)
