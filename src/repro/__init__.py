"""CaMDN reproduction: cache-efficient multi-tenant DNNs on integrated NPUs.

A production-quality Python reproduction of *CaMDN: Enhancing Cache
Efficiency for Multi-tenant DNNs on Integrated NPUs* (Cai et al., DAC
2025).  The package contains:

* :mod:`repro.core` — CaMDN itself: the NPU-controlled cache architecture
  (way masks, page allocator, CPTs, NECs, model-exclusive regions), the
  cache-aware layer mapper and the Algorithm 1 dynamic cache allocator.
* :mod:`repro.models` — the eight benchmark DNNs of Table I as
  shape-accurate layer graphs plus a reuse profiler.
* :mod:`repro.npu`, :mod:`repro.cache`, :mod:`repro.memory` — the SoC
  substrates: systolic timing, sliced shared cache, DRAM models.
* :mod:`repro.sim` — the fluid multi-tenant discrete-event engine.
* :mod:`repro.schedulers` — MoCA / AuRORA baselines and both CaMDN
  variants.
* :mod:`repro.experiments` — one harness per paper table and figure.

Quickstart::

    from repro import simulate

    result = simulate("camdn-full", ["RS.", "MB.", "BE."], duration_s=0.2)
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Sequence

from .config import (
    CACHE_LINE_BYTES,
    CACHE_PAGE_BYTES,
    KiB,
    MiB,
    CacheConfig,
    DRAMConfig,
    NPUConfig,
    SoCConfig,
    default_soc,
)
from .core.prepared import (
    PreparedModel,
    PreparedWorkload,
    clear_prepared_caches,
    prepare_model,
    prepare_workload,
    prepared_cache_info,
)
from .errors import ReproError
from .fleet import (
    DeviceClass,
    FleetAccumulator,
    FleetSpec,
    QuantileDigest,
    ScenarioDraw,
)
from .models import build_model, load_benchmark_suite
from .runconfig import RunConfig
from .schedulers import make_scheduler
from .sim import (
    ArrivalProcess,
    ClosedLoopWorkload,
    EngineSnapshot,
    EventTrace,
    EventTraceRecorder,
    FaultEvent,
    FaultSpec,
    MultiTenantEngine,
    ScenarioSpec,
    ScenarioWorkload,
    SimulationResult,
    StreamSpec,
    WorkloadSpec,
    fault_schedule_names,
    get_fault_schedule,
    get_scenario,
    register_fault_schedule,
    register_scenario,
    scenario_names,
)

__version__ = "1.5.0"

__all__ = [
    "KiB",
    "MiB",
    "CACHE_LINE_BYTES",
    "CACHE_PAGE_BYTES",
    "NPUConfig",
    "CacheConfig",
    "DRAMConfig",
    "SoCConfig",
    "default_soc",
    "ReproError",
    "build_model",
    "load_benchmark_suite",
    "make_scheduler",
    "WorkloadSpec",
    "ClosedLoopWorkload",
    "ArrivalProcess",
    "StreamSpec",
    "ScenarioSpec",
    "ScenarioWorkload",
    "EventTrace",
    "EventTraceRecorder",
    "FaultEvent",
    "FaultSpec",
    "fault_schedule_names",
    "get_fault_schedule",
    "register_fault_schedule",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "simulate_scenario",
    "MultiTenantEngine",
    "SimulationResult",
    "EngineSnapshot",
    "PreparedModel",
    "PreparedWorkload",
    "prepare_model",
    "prepare_workload",
    "prepared_cache_info",
    "clear_prepared_caches",
    "simulate",
    # Stable public facade (PR 10): one import surface for running
    # scenarios and fleets without reaching into experiment internals.
    "run",
    "run_fleet",
    "resume_fleet",
    "RunConfig",
    "FleetSpec",
    "FleetResult",
    "DeviceClass",
    "ScenarioDraw",
    "FleetAccumulator",
    "QuantileDigest",
    "isolated_latencies",
]


def simulate(
    policy: str,
    model_keys: Sequence[str],
    duration_s: Optional[float] = None,
    warmup_s: float = 0.0,
    inferences_per_stream: int = 3,
    qos_scale: float = float("inf"),
    soc: Optional[SoCConfig] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one multi-tenant simulation end to end.

    Args:
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``).
        model_keys: one Table I abbreviation per co-located stream.
        duration_s: steady-state window (``None`` selects count mode with
            ``inferences_per_stream`` measured inferences per stream).
        warmup_s: measurement start inside the steady-state window.
        inferences_per_stream: count-mode measured inferences.
        qos_scale: latency-target multiplier (0.8 / 1.0 / 1.2 for the
            paper's QoS-H/M/L levels; ``inf`` disables deadlines).
        soc: hardware configuration (defaults to paper Table II).
        **policy_kwargs: forwarded to the scheduler constructor.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult` with metrics.
    """
    # Route through the unified run_scenario pipeline (lazy import: the
    # experiments package imports this module for __version__).
    from .experiments.common import run_scenario

    spec = WorkloadSpec(
        model_keys=list(model_keys),
        inferences_per_stream=inferences_per_stream,
        warmup_inferences=1 if duration_s is None else 0,
        qos_scale=qos_scale,
        duration_s=duration_s,
        warmup_s=warmup_s,
    ).to_scenario()
    return run_scenario(
        spec, soc, make_scheduler(policy, **policy_kwargs)
    )


def simulate_scenario(
    policy: str,
    scenario: "ScenarioSpec | str",
    soc: Optional[SoCConfig] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one declarative scenario end to end.

    Args:
        policy: scheduler name (see :func:`simulate`).
        scenario: a :class:`ScenarioSpec` or a registered scenario name
            (see :func:`scenario_names`).
        soc: hardware configuration (defaults to paper Table II).
        **policy_kwargs: forwarded to the scheduler constructor.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult` with metrics,
        including the scenario-level ``summary()`` keys
        (``avg_queue_delay_ms``, ``offered_load_ratio``,
        ``cancelled_inferences``).
    """
    from .experiments.common import run_scenario

    return run_scenario(scenario, soc, policy, **policy_kwargs)


def run(
    scenario: "ScenarioSpec | str",
    soc: Optional[SoCConfig] = None,
    policy: str = "baseline",
    config: Optional[RunConfig] = None,
    scale: float = 1.0,
    **policy_kwargs,
) -> SimulationResult:
    """Run one scenario — the stable facade over the experiment layer.

    Args:
        scenario: a :class:`ScenarioSpec` or a registered scenario name
            (see :func:`scenario_names`).
        soc: hardware configuration (defaults to paper Table II).
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``, ``"camdn-qos"``).
        config: run-control configuration (see :class:`RunConfig`).
        scale: duration/arrival scale applied to the scenario
            (``spec.scaled(scale)``), mirroring the runner's
            ``--scale``.
        **policy_kwargs: forwarded to the scheduler constructor.

    Returns:
        The :class:`SimulationResult` with metrics.
    """
    from .experiments.common import run_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if scale != 1.0:
        scenario = scenario.scaled(scale)
    return run_scenario(scenario, soc, policy, config=config,
                        **policy_kwargs)


def run_fleet(spec: FleetSpec, **kwargs):
    """Simulate a device population — the stable facade over
    :func:`repro.fleet.runner.run_fleet` (same signature past ``spec``:
    ``soc``, ``journal_path``, ``max_workers``, ``use_cache``,
    ``deadline_s``, ``shard_size``, ``max_bins``).

    Returns:
        The :class:`repro.fleet.runner.FleetResult` with population
        percentiles via ``fleet_summary()``.
    """
    from .fleet.runner import run_fleet as _run_fleet

    return _run_fleet(spec, **kwargs)


def resume_fleet(journal_path, **kwargs):
    """Resume a crashed journaled fleet — facade over
    :func:`repro.fleet.runner.resume_fleet`."""
    from .fleet.runner import resume_fleet as _resume_fleet

    return _resume_fleet(journal_path, **kwargs)


def __getattr__(name: str):
    # These live in lazily-loaded modules (the fleet runner and the
    # experiments layer both import this module for __version__).
    if name == "FleetResult":
        from .fleet.runner import FleetResult

        return FleetResult
    if name == "isolated_latencies":
        from .experiments.common import isolated_latencies

        return isolated_latencies
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
