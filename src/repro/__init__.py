"""CaMDN reproduction: cache-efficient multi-tenant DNNs on integrated NPUs.

A production-quality Python reproduction of *CaMDN: Enhancing Cache
Efficiency for Multi-tenant DNNs on Integrated NPUs* (Cai et al., DAC
2025).  The package contains:

* :mod:`repro.core` — CaMDN itself: the NPU-controlled cache architecture
  (way masks, page allocator, CPTs, NECs, model-exclusive regions), the
  cache-aware layer mapper and the Algorithm 1 dynamic cache allocator.
* :mod:`repro.models` — the eight benchmark DNNs of Table I as
  shape-accurate layer graphs plus a reuse profiler.
* :mod:`repro.npu`, :mod:`repro.cache`, :mod:`repro.memory` — the SoC
  substrates: systolic timing, sliced shared cache, DRAM models.
* :mod:`repro.sim` — the fluid multi-tenant discrete-event engine.
* :mod:`repro.schedulers` — MoCA / AuRORA baselines and both CaMDN
  variants.
* :mod:`repro.experiments` — one harness per paper table and figure.

Quickstart::

    from repro import simulate

    result = simulate("camdn-full", ["RS.", "MB.", "BE."], duration_s=0.2)
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Sequence

from .config import (
    CACHE_LINE_BYTES,
    CACHE_PAGE_BYTES,
    KiB,
    MiB,
    CacheConfig,
    DRAMConfig,
    NPUConfig,
    SoCConfig,
    default_soc,
)
from .core.prepared import (
    PreparedModel,
    PreparedWorkload,
    clear_prepared_caches,
    prepare_model,
    prepare_workload,
    prepared_cache_info,
)
from .errors import ReproError
from .models import build_model, load_benchmark_suite
from .schedulers import make_scheduler
from .sim import (
    ClosedLoopWorkload,
    MultiTenantEngine,
    SimulationResult,
    WorkloadSpec,
)

__version__ = "1.1.0"

__all__ = [
    "KiB",
    "MiB",
    "CACHE_LINE_BYTES",
    "CACHE_PAGE_BYTES",
    "NPUConfig",
    "CacheConfig",
    "DRAMConfig",
    "SoCConfig",
    "default_soc",
    "ReproError",
    "build_model",
    "load_benchmark_suite",
    "make_scheduler",
    "WorkloadSpec",
    "ClosedLoopWorkload",
    "MultiTenantEngine",
    "SimulationResult",
    "PreparedModel",
    "PreparedWorkload",
    "prepare_model",
    "prepare_workload",
    "prepared_cache_info",
    "clear_prepared_caches",
    "simulate",
]


def simulate(
    policy: str,
    model_keys: Sequence[str],
    duration_s: Optional[float] = None,
    warmup_s: float = 0.0,
    inferences_per_stream: int = 3,
    qos_scale: float = float("inf"),
    soc: Optional[SoCConfig] = None,
    **policy_kwargs,
) -> SimulationResult:
    """Run one multi-tenant simulation end to end.

    Args:
        policy: scheduler name (``"baseline"``, ``"moca"``, ``"aurora"``,
            ``"camdn-hw"``, ``"camdn-full"``).
        model_keys: one Table I abbreviation per co-located stream.
        duration_s: steady-state window (``None`` selects count mode with
            ``inferences_per_stream`` measured inferences per stream).
        warmup_s: measurement start inside the steady-state window.
        inferences_per_stream: count-mode measured inferences.
        qos_scale: latency-target multiplier (0.8 / 1.0 / 1.2 for the
            paper's QoS-H/M/L levels; ``inf`` disables deadlines).
        soc: hardware configuration (defaults to paper Table II).
        **policy_kwargs: forwarded to the scheduler constructor.

    Returns:
        The :class:`~repro.sim.engine.SimulationResult` with metrics.
    """
    soc = soc or SoCConfig()
    # Warm (or hit) the process-wide prepared-workload cache: repeated
    # simulate() calls over the same (policy, models, SoC) reuse solved
    # mappings, layer cycles and access segments instead of re-deriving
    # them inside the engine run.
    prepare_workload(policy, model_keys, soc)
    spec = WorkloadSpec(
        model_keys=list(model_keys),
        inferences_per_stream=inferences_per_stream,
        warmup_inferences=1 if duration_s is None else 0,
        qos_scale=qos_scale,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )
    workload = ClosedLoopWorkload(spec)
    scheduler = make_scheduler(policy, **policy_kwargs)
    engine = MultiTenantEngine(soc, scheduler, workload)
    return engine.run()
