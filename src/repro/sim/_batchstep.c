/* Fused per-event stepping kernel for the fluid engine's batch loop.
 *
 * One call performs what the Python hot path spreads over several
 * functions per event: recompute the demand-proportional bandwidth
 * rates from the remaining-work arrays (mode DEMAND_PROP), find the
 * next event time (min over per-instance completion times, clamped by
 * the wakeup/timeline boundary), drain the fluid work, and report the
 * finished positions.
 *
 * Bit-identity contract
 * ---------------------
 * Every arithmetic expression below transcribes the exact shape and
 * evaluation order of the Python reference path:
 *
 *   demand   = (rem_d if rem_d > 1.0 else 1.0)
 *              / (t if (t := rem_c / freq) > 1e-9 else 1e-9)
 *   total    = sum(demands)                    # left-to-right
 *   share    = base + remaining * (demand / total)
 *   rate_d   = r if (r := total_bw * share * eff) > 1e-6 else 1e-6
 *   t_i      = max(rem_c / rate_c, rem_d / rate_d)
 *   dt       = min(t_i, wait_dt)
 *   rem'     = max(rem - dt * rate, 0.0)
 *   finished = rem_c' <= 1e-9 and rem_d' <= 1e-9
 *
 * (see CaMDNSchedulerBase.bandwidth_shares_list,
 * MultiTenantEngine._recompute_rates and RunningKernel.step).  All
 * operations are IEEE-754 binary64 with correctly-rounded results, so
 * compiling without FP contraction (-ffp-contract=off) and without
 * value-changing optimisations makes the C results identical to
 * CPython's on any conforming host.  The only reduction besides the
 * left-to-right demand total is the event-time min, which is exact in
 * any order.
 *
 * The function is deliberately conservative: any input it is not
 * certain about (a non-float list item, a non-positive demand total)
 * returns None, telling the engine to take the pure-Python path for
 * that event.  The Python and C paths are interchangeable mid-run.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>

#define MODE_STATIC 0
#define MODE_DEMAND_PROP 1
#define MODE_SLACK_WEIGHTED 2
#define MODE_SLACK_THROTTLED 3

/* Stack buffers cover every realistic running-set width; wider sets
 * take one heap allocation per call. */
#define STACK_WIDTH 96

#define FINISH_EPS 1e-9

static int
read_doubles(PyObject *list, double *out, Py_ssize_t n)
{
    Py_ssize_t i;
    for (i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(list, i);
        if (!PyFloat_CheckExact(item)) {
            return -1;
        }
        out[i] = PyFloat_AS_DOUBLE(item);
    }
    return 0;
}

/* fused_step(rem_c, rem_d, rate_c, rate_d, wait_dt, mode,
 *            freq, total_bw, eff, floor
 *            [, sl_arrival, sl_qos, sl_est, sl_progress, now, urgency])
 *   -> (dt, finished_list_or_None) | None
 *
 * rem_c/rem_d are updated in place.  rate_c/rate_d are read only in
 * MODE_STATIC; the dynamic modes derive rates from the remaining work
 * (compute rate == freq for every instance) and do not write them
 * back — the Python engine recomputes rates whenever it leaves the
 * fused path, so the lists never leak stale values.
 *
 * MODE_DEMAND_PROP weighs instances by demand alone.  The 16-argument
 * slack modes read the kernel's per-instance slack inputs (arrival
 * time, QoS target, estimated isolated latency, layer progress):
 * MODE_SLACK_WEIGHTED is AuRORA's exponential slack weighting
 * (SlackWeightedPolicy.allocate_list), MODE_SLACK_THROTTLED is MoCA's
 * halve-when-comfortable throttle feeding the demand-proportional
 * split (MoCAScheduler.bandwidth_shares_list, deadline branch).
 *
 * Returns None when the inputs fall outside the fast path (non-float
 * items, non-positive demand total); the caller then runs the exact
 * Python equivalent for this event.  dt may be +inf (nothing running,
 * nobody waking: the caller reports the deadlock) or negative (the
 * caller raises, mirroring RunningKernel.step).
 */
static PyObject *
fused_step(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *rem_c_l, *rem_d_l, *rate_c_l, *rate_d_l;
    PyObject *sl_a_l = NULL, *sl_q_l = NULL;
    PyObject *sl_e_l = NULL, *sl_p_l = NULL;
    double wait_dt, freq, total_bw, eff, fl;
    double now_t = 0.0, urgency = 0.0;
    long mode;
    double stack_buf[5 * STACK_WIDTH];
    double *buf = stack_buf;
    double *c, *d, *rc, *rd, *dem;
    double dt, total;
    Py_ssize_t n, i;
    PyObject *finished = NULL, *result;

    if (nargs != 10 && nargs != 16) {
        PyErr_SetString(PyExc_TypeError,
                        "fused_step expects 10 or 16 arguments");
        return NULL;
    }
    rem_c_l = args[0];
    rem_d_l = args[1];
    rate_c_l = args[2];
    rate_d_l = args[3];
    if (!PyList_CheckExact(rem_c_l) || !PyList_CheckExact(rem_d_l) ||
        !PyList_CheckExact(rate_c_l) || !PyList_CheckExact(rate_d_l)) {
        Py_RETURN_NONE;
    }
    wait_dt = PyFloat_AsDouble(args[4]);
    if (wait_dt == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    mode = PyLong_AsLong(args[5]);
    if (mode == -1 && PyErr_Occurred()) {
        return NULL;
    }
    freq = PyFloat_AsDouble(args[6]);
    total_bw = PyFloat_AsDouble(args[7]);
    eff = PyFloat_AsDouble(args[8]);
    fl = PyFloat_AsDouble(args[9]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (nargs == 16) {
        sl_a_l = args[10];
        sl_q_l = args[11];
        sl_e_l = args[12];
        sl_p_l = args[13];
        if (!PyList_CheckExact(sl_a_l) || !PyList_CheckExact(sl_q_l) ||
            !PyList_CheckExact(sl_e_l) || !PyList_CheckExact(sl_p_l)) {
            Py_RETURN_NONE;
        }
        now_t = PyFloat_AsDouble(args[14]);
        urgency = PyFloat_AsDouble(args[15]);
        if (PyErr_Occurred()) {
            return NULL;
        }
    }

    n = PyList_GET_SIZE(rem_c_l);
    if (PyList_GET_SIZE(rem_d_l) != n ||
        (mode == MODE_STATIC &&
         (PyList_GET_SIZE(rate_c_l) != n ||
          PyList_GET_SIZE(rate_d_l) != n))) {
        Py_RETURN_NONE;
    }
    if (mode == MODE_SLACK_WEIGHTED || mode == MODE_SLACK_THROTTLED) {
        if (nargs != 16 ||
            PyList_GET_SIZE(sl_a_l) != n ||
            PyList_GET_SIZE(sl_q_l) != n ||
            PyList_GET_SIZE(sl_e_l) != n ||
            PyList_GET_SIZE(sl_p_l) != n) {
            Py_RETURN_NONE;
        }
    }
    if (n > STACK_WIDTH) {
        buf = PyMem_Malloc((size_t)(5 * n) * sizeof(double));
        if (buf == NULL) {
            return PyErr_NoMemory();
        }
    }
    c = buf;
    d = buf + n;
    rc = buf + 2 * n;
    rd = buf + 3 * n;
    dem = buf + 4 * n;

    if (read_doubles(rem_c_l, c, n) < 0 ||
        read_doubles(rem_d_l, d, n) < 0) {
        goto bail_none;
    }

    if (mode == MODE_DEMAND_PROP) {
        /* Demands and their left-to-right total
         * (CaMDNSchedulerBase.bandwidth_shares_list /
         * MoCAScheduler.bandwidth_shares_list, no-deadline branch). */
        total = 0.0;
        for (i = 0; i < n; i++) {
            double t = c[i] / freq;
            double den = t > 1e-9 ? t : 1e-9;
            double num = d[i] > 1.0 ? d[i] : 1.0;
            double demand = num / den;
            dem[i] = demand;
            total += demand;
        }
        if (n > 0 && !(total > 0.0)) {
            /* Unreachable with positive work, but the Python fallback
             * (DemandProportionalPolicy.allocate_list) owns this case. */
            goto bail_none;
        }
        {
            /* Share constants (DemandProportionalPolicy.allocate_list:
             * floor_total, base, remaining — same floats for any n). */
            double floor_total = fl * (double)n;
            double base, remaining;
            if (!(floor_total < 1.0)) {
                floor_total = 0.0;
            }
            base = floor_total != 0.0 ? fl : 0.0;
            remaining = 1.0 - floor_total;
            for (i = 0; i < n; i++) {
                /* share, then the engine's rate install:
                 * r = total_bw * share * eff, clamped above 1e-6. */
                double share = base + remaining * (dem[i] / total);
                double r = total_bw * share * eff;
                rc[i] = freq;
                rd[i] = r > 1e-6 ? r : 1e-6;
            }
        }
    }
    else if (mode == MODE_SLACK_WEIGHTED ||
             mode == MODE_SLACK_THROTTLED) {
        /* Weights and their left-to-right total.  Slack transcribes
         * SchedulerPolicy.slack_of exactly; the demand shape matches
         * MODE_DEMAND_PROP.  Inputs are read per element so a single
         * foreign item bails before any state is touched. */
        total = 0.0;
        for (i = 0; i < n; i++) {
            PyObject *ia = PyList_GET_ITEM(sl_a_l, i);
            PyObject *iq = PyList_GET_ITEM(sl_q_l, i);
            PyObject *ie = PyList_GET_ITEM(sl_e_l, i);
            PyObject *ip = PyList_GET_ITEM(sl_p_l, i);
            double a, q, e, p, t, den, num, demand, slack, w;
            if (!PyFloat_CheckExact(ia) || !PyFloat_CheckExact(iq) ||
                !PyFloat_CheckExact(ie) || !PyFloat_CheckExact(ip)) {
                goto bail_none;
            }
            a = PyFloat_AS_DOUBLE(ia);
            q = PyFloat_AS_DOUBLE(iq);
            e = PyFloat_AS_DOUBLE(ie);
            p = PyFloat_AS_DOUBLE(ip);
            t = c[i] / freq;
            den = t > 1e-9 ? t : 1e-9;
            num = d[i] > 1.0 ? d[i] : 1.0;
            demand = num / den;
            if (isinf(q)) {
                /* No deadline: slack_of's early return. */
                slack = 1.0;
            }
            else {
                double ef = a + (e * (1.0 - p)) + (now_t - a);
                slack = ((a + q) - ef) / q;
            }
            if (mode == MODE_SLACK_THROTTLED) {
                /* MoCA: halve the demand of tasks more than 50 %
                 * ahead of their deadline. */
                if (slack > 0.5) {
                    demand *= 0.5;
                }
                w = demand;
            }
            else {
                /* AuRORA: clamp slack, weigh exponentially
                 * (SlackWeightedPolicy.allocate_list). */
                double s2 = slack > -20.0 ? slack : -20.0;
                s2 = s2 < 20.0 ? s2 : 20.0;
                w = (demand > 1.0 ? demand : 1.0)
                    * exp(-urgency * s2);
            }
            dem[i] = w;
            total += w;
        }
        if (n > 0 && !(total > 0.0)) {
            goto bail_none;
        }
        {
            double floor_total = fl * (double)n;
            double base, remaining;
            if (!(floor_total < 1.0)) {
                floor_total = 0.0;
            }
            base = floor_total != 0.0 ? fl : 0.0;
            remaining = 1.0 - floor_total;
            for (i = 0; i < n; i++) {
                /* The two policies group the share expression
                 * differently; both shapes are preserved. */
                double share;
                double r;
                if (mode == MODE_SLACK_THROTTLED) {
                    share = base + remaining * (dem[i] / total);
                }
                else {
                    share = base + remaining * dem[i] / total;
                }
                r = total_bw * share * eff;
                rc[i] = freq;
                rd[i] = r > 1e-6 ? r : 1e-6;
            }
        }
    }
    else {
        if (read_doubles(rate_c_l, rc, n) < 0 ||
            read_doubles(rate_d_l, rd, n) < 0) {
            goto bail_none;
        }
    }

    /* Min event time (RunningKernel.step list backend). */
    dt = Py_HUGE_VAL;
    for (i = 0; i < n; i++) {
        double t_c = c[i] / rc[i];
        double t_d = d[i] / rd[i];
        double t = t_c >= t_d ? t_c : t_d;
        if (t < dt) {
            dt = t;
        }
    }
    if (wait_dt < dt) {
        dt = wait_dt;
    }
    if (dt == Py_HUGE_VAL || dt < 0.0) {
        /* inf: idle/deadlock; negative: corrupt state.  Both are the
         * caller's to report; no state was touched. */
        if (buf != stack_buf) {
            PyMem_Free(buf);
        }
        return Py_BuildValue("(dO)", dt, Py_None);
    }

    /* Advance and completion scan (RunningKernel.advance). */
    for (i = 0; i < n; i++) {
        double nc = c[i] - dt * rc[i];
        double nd;
        if (nc < 0.0) {
            nc = 0.0;
        }
        nd = d[i] - dt * rd[i];
        if (nd < 0.0) {
            nd = 0.0;
        }
        c[i] = nc;
        d[i] = nd;
        if (nc <= FINISH_EPS && nd <= FINISH_EPS) {
            if (finished == NULL) {
                finished = PyList_New(0);
                if (finished == NULL) {
                    goto bail_err;
                }
            }
            {
                PyObject *pos = PyLong_FromSsize_t(i);
                int rcode;
                if (pos == NULL) {
                    goto bail_err;
                }
                rcode = PyList_Append(finished, pos);
                Py_DECREF(pos);
                if (rcode < 0) {
                    goto bail_err;
                }
            }
        }
    }

    /* Write the drained work back (the lists stay authoritative). */
    for (i = 0; i < n; i++) {
        PyObject *fc = PyFloat_FromDouble(c[i]);
        PyObject *fd;
        if (fc == NULL) {
            goto bail_err;
        }
        PyList_SetItem(rem_c_l, i, fc);
        fd = PyFloat_FromDouble(d[i]);
        if (fd == NULL) {
            goto bail_err;
        }
        PyList_SetItem(rem_d_l, i, fd);
    }

    if (finished == NULL) {
        result = Py_BuildValue("(dO)", dt, Py_None);
    }
    else {
        result = Py_BuildValue("(dO)", dt, finished);
    }
    Py_XDECREF(finished);
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    return result;

bail_none:
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    Py_RETURN_NONE;

bail_err:
    Py_XDECREF(finished);
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    return NULL;
}

/* ------------------------------------------------------------------ */
/* CaMDN per-completion fast path                                      */
/* ------------------------------------------------------------------ */

/* Read a list item as a C long (exact-int items only). */
static int
list_long(PyObject *list, Py_ssize_t i, long *out)
{
    PyObject *item = PyList_GET_ITEM(list, i);
    if (!PyLong_CheckExact(item)) {
        return -1;
    }
    *out = PyLong_AsLong(item);
    if (*out == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        return -1;
    }
    return 0;
}

/* Read a tuple item as a C long (exact-int items only). */
static int
tuple_long(PyObject *tup, Py_ssize_t i, long *out)
{
    PyObject *item = PyTuple_GET_ITEM(tup, i);
    if (!PyLong_CheckExact(item)) {
        return -1;
    }
    *out = PyLong_AsLong(item);
    if (*out == -1 && PyErr_Occurred()) {
        PyErr_Clear();
        return -1;
    }
    return 0;
}

/* bisect.bisect_right over a tuple of ints (exact transcription:
 * ``if x < a[mid]: hi = mid else: lo = mid + 1``). */
static Py_ssize_t
bisect_right_tup(PyObject *tup, long x, int *err)
{
    Py_ssize_t lo = 0, hi = PyTuple_GET_SIZE(tup);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) / 2;
        long v;
        if (tuple_long(tup, mid, &v) < 0) {
            *err = 1;
            return 0;
        }
        if (x < v) {
            hi = mid;
        }
        else {
            lo = mid + 1;
        }
    }
    return lo;
}

/* DynamicCacheAllocator._pred_avail: sum every task's predicted free
 * pages, then compensate the excluded slot.  Pure integer arithmetic
 * on the live predictor lists; -1 on any non-exact-typed item. */
static int
pred_avail(PyObject *tnext_l, PyObject *pnext_l, PyObject *palloc_l,
           double t_ahead, Py_ssize_t skip, long total_pages,
           long palloc_sum, long *out)
{
    Py_ssize_t n = PyList_GET_SIZE(tnext_l), i;
    long p_ahead = total_pages - palloc_sum;

    for (i = 0; i < n; i++) {
        PyObject *t = PyList_GET_ITEM(tnext_l, i);
        if (!PyFloat_CheckExact(t)) {
            return -1;
        }
        if (PyFloat_AS_DOUBLE(t) < t_ahead) {
            long pa, pn;
            if (list_long(palloc_l, i, &pa) < 0 ||
                list_long(pnext_l, i, &pn) < 0) {
                return -1;
            }
            p_ahead += pa - pn;
        }
    }
    if (skip >= 0 && skip < n) {
        PyObject *t = PyList_GET_ITEM(tnext_l, skip);
        if (PyFloat_AS_DOUBLE(t) < t_ahead) {
            long pa, pn;
            if (list_long(palloc_l, skip, &pa) < 0 ||
                list_long(pnext_l, skip, &pn) < 0) {
                return -1;
            }
            p_ahead -= pa - pn;
        }
    }
    *out = p_ahead;
    return 0;
}

/* Per-layer geometry row indices (built by
 * CaMDNSchedulerBase._build_fast_file). */
#define ROW_LBM_PAGES 0
#define ROW_HEAD 1
#define ROW_BLOCK_START 2
#define ROW_BLOCK_END 3
#define ROW_HEAD_TIMEOUT 4
#define ROW_EST 5
#define ROW_LWM_TIMEOUT 6
#define ROW_SINGLE_LEVEL 7
#define ROW_IS_SORTED 8
#define ROW_TRIVIAL 9
#define ROW_UNIQUE 10
#define ROW_FIRST_OF 11
#define ROW_LAST_OF 12
#define ROW_LWM 13
#define ROW_WIDTH 14

/* camdn_advance(tnext, pnext, palloc, slot, now, total_pages,
 *               palloc_sum, lbm_start, lbm_end, layer_index,
 *               region_pages, row, hw_mode, share)
 *   -> (code, new_lbm_start, new_lbm_end) | None
 *
 * One CaMDN layer completion, fused: Algorithm 1's end-of-layer
 * predictor update (DynamicCacheAllocator.end_layer_prepared) plus the
 * next layer's candidate selection (select_prepared, or the HW-only
 * static-split walk) plus the no-resize grant check
 * (CaMDNSystem._try_grant when the selected footprint equals the
 * task's current region).  ``row`` is the *next* layer's precomputed
 * geometry row; ``lbm_start``/``lbm_end`` encode the task's active LBM
 * block (-1/-1 for none); ``layer_index`` is the layer that just ended.
 *
 * The function is pure until the final commit: every bail path (type
 * mismatch, a selection whose footprint differs from the current
 * region, anything touching the resize/denial machinery) returns None
 * with *zero* state mutated, so the caller can rerun the exact Python
 * chain.  On success it writes the slot's tnext/pnext predictions and
 * returns the selection code — full mode: 0 = sticky LBM, 1 = enable
 * LBM at a block head, 2 = single-level lwm[0], 3+i = lwm[i]; HW-only
 * mode: 0 = "hw_lbm_on", 1 = "hw_lbm_keep", 2+i = lwm[i] — along with
 * the task's LBM block after the end-of-block clear and any new
 * enablement.  The palloc write of commit is skipped exactly as the
 * Python path skips it (the grant equals the current allocation).
 */
static PyObject *
camdn_advance(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *tnext_l, *pnext_l, *palloc_l, *row;
    PyObject *unique, *first_of, *last_of, *lwm;
    double now, head_timeout, est, lwm_timeout;
    long slot, total_pages, palloc_sum, lbm_s, lbm_e, layer_index;
    long region_pages, hw_mode, share;
    long lbm_pages, head, blk_s, blk_e;
    long single_level, is_sorted, trivial;
    long palloc_slot, new_pnext, code, pages, sel_enables = 0;
    long m;
    double new_tnext;
    Py_ssize_t n;
    PyObject *ftn, *fpn;

    if (nargs != 14) {
        PyErr_SetString(PyExc_TypeError,
                        "camdn_advance expects exactly 14 arguments");
        return NULL;
    }
    tnext_l = args[0];
    pnext_l = args[1];
    palloc_l = args[2];
    if (!PyList_CheckExact(tnext_l) || !PyList_CheckExact(pnext_l) ||
        !PyList_CheckExact(palloc_l)) {
        Py_RETURN_NONE;
    }
    slot = PyLong_AsLong(args[3]);
    if (slot == -1 && PyErr_Occurred()) {
        return NULL;
    }
    now = PyFloat_AsDouble(args[4]);
    total_pages = PyLong_AsLong(args[5]);
    palloc_sum = PyLong_AsLong(args[6]);
    lbm_s = PyLong_AsLong(args[7]);
    lbm_e = PyLong_AsLong(args[8]);
    layer_index = PyLong_AsLong(args[9]);
    region_pages = PyLong_AsLong(args[10]);
    row = args[11];
    hw_mode = PyLong_AsLong(args[12]);
    share = PyLong_AsLong(args[13]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (!PyTuple_CheckExact(row) ||
        PyTuple_GET_SIZE(row) != ROW_WIDTH) {
        Py_RETURN_NONE;
    }

    n = PyList_GET_SIZE(tnext_l);
    if (PyList_GET_SIZE(pnext_l) != n ||
        PyList_GET_SIZE(palloc_l) != n ||
        slot < 0 || slot >= n) {
        Py_RETURN_NONE;
    }

    if (tuple_long(row, ROW_LBM_PAGES, &lbm_pages) < 0 ||
        tuple_long(row, ROW_HEAD, &head) < 0 ||
        tuple_long(row, ROW_BLOCK_START, &blk_s) < 0 ||
        tuple_long(row, ROW_BLOCK_END, &blk_e) < 0 ||
        tuple_long(row, ROW_SINGLE_LEVEL, &single_level) < 0 ||
        tuple_long(row, ROW_IS_SORTED, &is_sorted) < 0 ||
        tuple_long(row, ROW_TRIVIAL, &trivial) < 0) {
        Py_RETURN_NONE;
    }
    {
        PyObject *iht = PyTuple_GET_ITEM(row, ROW_HEAD_TIMEOUT);
        PyObject *ie = PyTuple_GET_ITEM(row, ROW_EST);
        PyObject *ilt = PyTuple_GET_ITEM(row, ROW_LWM_TIMEOUT);
        if (!PyFloat_CheckExact(iht) || !PyFloat_CheckExact(ie) ||
            !PyFloat_CheckExact(ilt)) {
            Py_RETURN_NONE;
        }
        head_timeout = PyFloat_AS_DOUBLE(iht);
        est = PyFloat_AS_DOUBLE(ie);
        lwm_timeout = PyFloat_AS_DOUBLE(ilt);
    }
    unique = PyTuple_GET_ITEM(row, ROW_UNIQUE);
    first_of = PyTuple_GET_ITEM(row, ROW_FIRST_OF);
    last_of = PyTuple_GET_ITEM(row, ROW_LAST_OF);
    lwm = PyTuple_GET_ITEM(row, ROW_LWM);
    if (!PyTuple_CheckExact(unique) || !PyTuple_CheckExact(first_of) ||
        !PyTuple_CheckExact(last_of) || !PyTuple_CheckExact(lwm) ||
        PyTuple_GET_SIZE(lwm) < 1) {
        Py_RETURN_NONE;
    }

    if (list_long(palloc_l, slot, &palloc_slot) < 0) {
        Py_RETURN_NONE;
    }
    /* _try_grant's no-resize fast path requires the allocator and the
     * region to agree on the task's holding (true between layers). */
    if (palloc_slot != region_pages) {
        Py_RETURN_NONE;
    }

    m = layer_index + 1;  /* the layer being selected (row describes it) */

    /* --- end_layer_prepared for the next layer (computed, not yet
     * written: every later bail must leave no trace). --- */
    new_tnext = now + est;
    if (lbm_s >= 0 && lbm_pages >= 0 && lbm_s <= m && m < lbm_e) {
        new_pnext = lbm_pages;
    }
    else if (single_level) {
        if (PyTuple_GET_SIZE(unique) > 0) {
            long u0;
            if (tuple_long(unique, 0, &u0) < 0) {
                Py_RETURN_NONE;
            }
            new_pnext = u0 <= palloc_slot ? u0 : 0;
        }
        else {
            new_pnext = 0;
        }
    }
    else {
        int err = 0;
        Py_ssize_t k = bisect_right_tup(unique, palloc_slot, &err) - 1;
        long uk = 0;
        if (err || (k >= 0 && tuple_long(unique, k, &uk) < 0)) {
            Py_RETURN_NONE;
        }
        new_pnext = k >= 0 ? uk : 0;
    }
    /* End-of-block clear (after the pnext prediction, as in Python). */
    if (lbm_s >= 0 && layer_index >= lbm_e - 1) {
        lbm_s = -1;
        lbm_e = -1;
    }

    /* --- candidate selection for layer m.  predAvailPages excludes
     * this task's slot, so the pending tnext/pnext writes cannot
     * affect it. --- */
    if (hw_mode) {
        /* CaMDNSystem._hw_only_decision: equal static split. */
        if (lbm_pages < 0 && trivial) {
            code = 2;
            if (tuple_long(lwm, 0, &pages) < 0) {
                Py_RETURN_NONE;
            }
        }
        else if (lbm_pages >= 0 && lbm_pages <= share) {
            int covers = lbm_s >= 0 && lbm_s <= m && m < lbm_e;
            code = covers ? 1 : 0;
            sel_enables = !covers;
            pages = lbm_pages;
        }
        else {
            /* MCTGeometry.last_fitting_index(share). */
            long i;
            int err = 0;
            if (is_sorted) {
                Py_ssize_t k = bisect_right_tup(lwm, share, &err) - 1;
                if (err) {
                    Py_RETURN_NONE;
                }
                i = k >= 0 ? (long)k : 0;
            }
            else {
                Py_ssize_t k = bisect_right_tup(unique, share, &err) - 1;
                if (err) {
                    Py_RETURN_NONE;
                }
                if (k < 0) {
                    i = 0;
                }
                else {
                    Py_ssize_t j;
                    long best = 0, v;
                    if (k >= PyTuple_GET_SIZE(last_of)) {
                        Py_RETURN_NONE;
                    }
                    for (j = 0; j <= k; j++) {
                        if (tuple_long(last_of, j, &v) < 0) {
                            Py_RETURN_NONE;
                        }
                        if (j == 0 || v > best) {
                            best = v;
                        }
                    }
                    i = best;
                }
            }
            if (i >= PyTuple_GET_SIZE(lwm) ||
                tuple_long(lwm, i, &pages) < 0) {
                Py_RETURN_NONE;
            }
            code = 2 + i;
        }
    }
    else {
        int done = 0;
        code = 0;
        pages = 0;
        if (lbm_pages >= 0) {
            if (lbm_s >= 0 && lbm_s <= m && m < lbm_e) {
                /* Lines 7-9: LBM already enabled (sticky). */
                code = 0;
                pages = lbm_pages;
                done = 1;
            }
            else if (head) {
                /* Lines 10-15: try to enable LBM at the block head. */
                double t_ahead = now + head_timeout;
                long pa;
                if (pred_avail(tnext_l, pnext_l, palloc_l, t_ahead,
                               slot, total_pages, palloc_sum,
                               &pa) < 0) {
                    Py_RETURN_NONE;
                }
                pa = pa + palloc_slot;
                if (lbm_pages < pa) {
                    code = 1;
                    pages = lbm_pages;
                    sel_enables = 1;
                    done = 1;
                }
            }
        }
        if (!done) {
            /* Lines 16-22: largest LWM candidate in the prediction. */
            if (single_level) {
                code = 2;
                if (tuple_long(lwm, 0, &pages) < 0) {
                    Py_RETURN_NONE;
                }
            }
            else {
                double t_ahead = now + lwm_timeout;
                long budget, i;
                int err = 0;
                Py_ssize_t k;
                if (pred_avail(tnext_l, pnext_l, palloc_l, t_ahead,
                               slot, total_pages, palloc_sum,
                               &budget) < 0) {
                    Py_RETURN_NONE;
                }
                budget = budget + palloc_slot;
                /* MCTGeometry.select_index(budget). */
                k = bisect_right_tup(unique, budget, &err) - 1;
                if (err) {
                    Py_RETURN_NONE;
                }
                if (k < 0) {
                    i = 0;
                }
                else {
                    long uk, l0, fk;
                    if (tuple_long(unique, k, &uk) < 0 ||
                        tuple_long(lwm, 0, &l0) < 0) {
                        Py_RETURN_NONE;
                    }
                    if (uk <= l0) {
                        i = 0;
                    }
                    else {
                        if (k >= PyTuple_GET_SIZE(first_of) ||
                            tuple_long(first_of, k, &fk) < 0) {
                            Py_RETURN_NONE;
                        }
                        i = fk;
                    }
                }
                if (i >= PyTuple_GET_SIZE(lwm) ||
                    tuple_long(lwm, i, &pages) < 0) {
                    Py_RETURN_NONE;
                }
                code = 3 + i;
            }
        }
    }

    /* _try_grant: only the no-resize grant is provably equivalent
     * here; anything needing the region machinery goes to Python. */
    if (pages != region_pages) {
        Py_RETURN_NONE;
    }
    if (sel_enables) {
        if (blk_s < 0) {
            /* block_of() would return None for an enabling decision —
             * inconsistent table; let Python handle it. */
            Py_RETURN_NONE;
        }
        lbm_s = blk_s;
        lbm_e = blk_e;
    }

    /* --- commit: the slot's predictor writes (palloc is unchanged by
     * construction, exactly the skipped write in _try_grant). --- */
    ftn = PyFloat_FromDouble(new_tnext);
    if (ftn == NULL) {
        return NULL;
    }
    fpn = PyLong_FromLong(new_pnext);
    if (fpn == NULL) {
        Py_DECREF(ftn);
        return NULL;
    }
    PyList_SetItem(tnext_l, slot, ftn);
    PyList_SetItem(pnext_l, slot, fpn);
    return Py_BuildValue("(lll)", code, lbm_s, lbm_e);
}

static PyMethodDef batchstep_methods[] = {
    {"fused_step", (PyCFunction)(void (*)(void))fused_step,
     METH_FASTCALL,
     "Fused rates-recompute + min-dt + advance for one engine event."},
    {"camdn_advance", (PyCFunction)(void (*)(void))camdn_advance,
     METH_FASTCALL,
     "Fused CaMDN end-of-layer update + next-layer selection + grant."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef batchstep_module = {
    PyModuleDef_HEAD_INIT,
    "_batchstep",
    "Native fused-step kernel for the fluid engine batch loop.",
    -1,
    batchstep_methods,
};

PyMODINIT_FUNC
PyInit__batchstep(void)
{
    return PyModule_Create(&batchstep_module);
}
