/* Fused per-event stepping kernel for the fluid engine's batch loop.
 *
 * One call performs what the Python hot path spreads over several
 * functions per event: recompute the demand-proportional bandwidth
 * rates from the remaining-work arrays (mode DEMAND_PROP), find the
 * next event time (min over per-instance completion times, clamped by
 * the wakeup/timeline boundary), drain the fluid work, and report the
 * finished positions.
 *
 * Bit-identity contract
 * ---------------------
 * Every arithmetic expression below transcribes the exact shape and
 * evaluation order of the Python reference path:
 *
 *   demand   = (rem_d if rem_d > 1.0 else 1.0)
 *              / (t if (t := rem_c / freq) > 1e-9 else 1e-9)
 *   total    = sum(demands)                    # left-to-right
 *   share    = base + remaining * (demand / total)
 *   rate_d   = r if (r := total_bw * share * eff) > 1e-6 else 1e-6
 *   t_i      = max(rem_c / rate_c, rem_d / rate_d)
 *   dt       = min(t_i, wait_dt)
 *   rem'     = max(rem - dt * rate, 0.0)
 *   finished = rem_c' <= 1e-9 and rem_d' <= 1e-9
 *
 * (see CaMDNSchedulerBase.bandwidth_shares_list,
 * MultiTenantEngine._recompute_rates and RunningKernel.step).  All
 * operations are IEEE-754 binary64 with correctly-rounded results, so
 * compiling without FP contraction (-ffp-contract=off) and without
 * value-changing optimisations makes the C results identical to
 * CPython's on any conforming host.  The only reduction besides the
 * left-to-right demand total is the event-time min, which is exact in
 * any order.
 *
 * The function is deliberately conservative: any input it is not
 * certain about (a non-float list item, a non-positive demand total)
 * returns None, telling the engine to take the pure-Python path for
 * that event.  The Python and C paths are interchangeable mid-run.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>

#define MODE_STATIC 0
#define MODE_DEMAND_PROP 1

/* Stack buffers cover every realistic running-set width; wider sets
 * take one heap allocation per call. */
#define STACK_WIDTH 96

#define FINISH_EPS 1e-9

static int
read_doubles(PyObject *list, double *out, Py_ssize_t n)
{
    Py_ssize_t i;
    for (i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(list, i);
        if (!PyFloat_CheckExact(item)) {
            return -1;
        }
        out[i] = PyFloat_AS_DOUBLE(item);
    }
    return 0;
}

/* fused_step(rem_c, rem_d, rate_c, rate_d, wait_dt, mode,
 *            freq, total_bw, eff, floor)
 *   -> (dt, finished_list_or_None) | None
 *
 * rem_c/rem_d are updated in place.  rate_c/rate_d are read only in
 * MODE_STATIC; MODE_DEMAND_PROP derives rates from the remaining work
 * (compute rate == freq for every instance) and does not write them
 * back — the Python engine recomputes rates whenever it leaves the
 * fused path, so the lists never leak stale values.
 *
 * Returns None when the inputs fall outside the fast path (non-float
 * items, non-positive demand total); the caller then runs the exact
 * Python equivalent for this event.  dt may be +inf (nothing running,
 * nobody waking: the caller reports the deadlock) or negative (the
 * caller raises, mirroring RunningKernel.step).
 */
static PyObject *
fused_step(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *rem_c_l, *rem_d_l, *rate_c_l, *rate_d_l;
    double wait_dt, freq, total_bw, eff, fl;
    long mode;
    double stack_buf[5 * STACK_WIDTH];
    double *buf = stack_buf;
    double *c, *d, *rc, *rd, *dem;
    double dt, total;
    Py_ssize_t n, i;
    PyObject *finished = NULL, *result;

    if (nargs != 10) {
        PyErr_SetString(PyExc_TypeError,
                        "fused_step expects exactly 10 arguments");
        return NULL;
    }
    rem_c_l = args[0];
    rem_d_l = args[1];
    rate_c_l = args[2];
    rate_d_l = args[3];
    if (!PyList_CheckExact(rem_c_l) || !PyList_CheckExact(rem_d_l) ||
        !PyList_CheckExact(rate_c_l) || !PyList_CheckExact(rate_d_l)) {
        Py_RETURN_NONE;
    }
    wait_dt = PyFloat_AsDouble(args[4]);
    if (wait_dt == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    mode = PyLong_AsLong(args[5]);
    if (mode == -1 && PyErr_Occurred()) {
        return NULL;
    }
    freq = PyFloat_AsDouble(args[6]);
    total_bw = PyFloat_AsDouble(args[7]);
    eff = PyFloat_AsDouble(args[8]);
    fl = PyFloat_AsDouble(args[9]);
    if (PyErr_Occurred()) {
        return NULL;
    }

    n = PyList_GET_SIZE(rem_c_l);
    if (PyList_GET_SIZE(rem_d_l) != n ||
        (mode == MODE_STATIC &&
         (PyList_GET_SIZE(rate_c_l) != n ||
          PyList_GET_SIZE(rate_d_l) != n))) {
        Py_RETURN_NONE;
    }
    if (n > STACK_WIDTH) {
        buf = PyMem_Malloc((size_t)(5 * n) * sizeof(double));
        if (buf == NULL) {
            return PyErr_NoMemory();
        }
    }
    c = buf;
    d = buf + n;
    rc = buf + 2 * n;
    rd = buf + 3 * n;
    dem = buf + 4 * n;

    if (read_doubles(rem_c_l, c, n) < 0 ||
        read_doubles(rem_d_l, d, n) < 0) {
        goto bail_none;
    }

    if (mode == MODE_DEMAND_PROP) {
        /* Demands and their left-to-right total
         * (CaMDNSchedulerBase.bandwidth_shares_list /
         * MoCAScheduler.bandwidth_shares_list, no-deadline branch). */
        total = 0.0;
        for (i = 0; i < n; i++) {
            double t = c[i] / freq;
            double den = t > 1e-9 ? t : 1e-9;
            double num = d[i] > 1.0 ? d[i] : 1.0;
            double demand = num / den;
            dem[i] = demand;
            total += demand;
        }
        if (n > 0 && !(total > 0.0)) {
            /* Unreachable with positive work, but the Python fallback
             * (DemandProportionalPolicy.allocate_list) owns this case. */
            goto bail_none;
        }
        {
            /* Share constants (DemandProportionalPolicy.allocate_list:
             * floor_total, base, remaining — same floats for any n). */
            double floor_total = fl * (double)n;
            double base, remaining;
            if (!(floor_total < 1.0)) {
                floor_total = 0.0;
            }
            base = floor_total != 0.0 ? fl : 0.0;
            remaining = 1.0 - floor_total;
            for (i = 0; i < n; i++) {
                /* share, then the engine's rate install:
                 * r = total_bw * share * eff, clamped above 1e-6. */
                double share = base + remaining * (dem[i] / total);
                double r = total_bw * share * eff;
                rc[i] = freq;
                rd[i] = r > 1e-6 ? r : 1e-6;
            }
        }
    }
    else {
        if (read_doubles(rate_c_l, rc, n) < 0 ||
            read_doubles(rate_d_l, rd, n) < 0) {
            goto bail_none;
        }
    }

    /* Min event time (RunningKernel.step list backend). */
    dt = Py_HUGE_VAL;
    for (i = 0; i < n; i++) {
        double t_c = c[i] / rc[i];
        double t_d = d[i] / rd[i];
        double t = t_c >= t_d ? t_c : t_d;
        if (t < dt) {
            dt = t;
        }
    }
    if (wait_dt < dt) {
        dt = wait_dt;
    }
    if (dt == Py_HUGE_VAL || dt < 0.0) {
        /* inf: idle/deadlock; negative: corrupt state.  Both are the
         * caller's to report; no state was touched. */
        if (buf != stack_buf) {
            PyMem_Free(buf);
        }
        return Py_BuildValue("(dO)", dt, Py_None);
    }

    /* Advance and completion scan (RunningKernel.advance). */
    for (i = 0; i < n; i++) {
        double nc = c[i] - dt * rc[i];
        double nd;
        if (nc < 0.0) {
            nc = 0.0;
        }
        nd = d[i] - dt * rd[i];
        if (nd < 0.0) {
            nd = 0.0;
        }
        c[i] = nc;
        d[i] = nd;
        if (nc <= FINISH_EPS && nd <= FINISH_EPS) {
            if (finished == NULL) {
                finished = PyList_New(0);
                if (finished == NULL) {
                    goto bail_err;
                }
            }
            {
                PyObject *pos = PyLong_FromSsize_t(i);
                int rcode;
                if (pos == NULL) {
                    goto bail_err;
                }
                rcode = PyList_Append(finished, pos);
                Py_DECREF(pos);
                if (rcode < 0) {
                    goto bail_err;
                }
            }
        }
    }

    /* Write the drained work back (the lists stay authoritative). */
    for (i = 0; i < n; i++) {
        PyObject *fc = PyFloat_FromDouble(c[i]);
        PyObject *fd;
        if (fc == NULL) {
            goto bail_err;
        }
        PyList_SetItem(rem_c_l, i, fc);
        fd = PyFloat_FromDouble(d[i]);
        if (fd == NULL) {
            goto bail_err;
        }
        PyList_SetItem(rem_d_l, i, fd);
    }

    if (finished == NULL) {
        result = Py_BuildValue("(dO)", dt, Py_None);
    }
    else {
        result = Py_BuildValue("(dO)", dt, finished);
    }
    Py_XDECREF(finished);
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    return result;

bail_none:
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    Py_RETURN_NONE;

bail_err:
    Py_XDECREF(finished);
    if (buf != stack_buf) {
        PyMem_Free(buf);
    }
    return NULL;
}

static PyMethodDef batchstep_methods[] = {
    {"fused_step", (PyCFunction)(void (*)(void))fused_step,
     METH_FASTCALL,
     "Fused rates-recompute + min-dt + advance for one engine event."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef batchstep_module = {
    PyModuleDef_HEAD_INIT,
    "_batchstep",
    "Native fused-step kernel for the fluid engine batch loop.",
    -1,
    batchstep_methods,
};

PyMODINIT_FUNC
PyInit__batchstep(void)
{
    return PyModule_Create(&batchstep_module);
}
