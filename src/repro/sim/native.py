"""Build-on-demand loader for the native fused-step kernel.

The engine's batch loop calls one C function per event
(:mod:`repro.sim._batchstep`) instead of the Python
recompute-rates/step pair.  The extension is compiled from the shipped
``_batchstep.c`` the first time a process asks for it, cached under
``$XDG_CACHE_HOME/camdn-repro/native/`` keyed by source digest and
Python ABI, and loaded from the cache on every later run — so the repo
stays a plain ``PYTHONPATH=src`` checkout with no build step.

The loader is strictly best-effort: a missing compiler, a sandboxed
filesystem, a failed compile or a failed import all degrade to the pure
Python path (bit-identical by construction, just slower).  Disable
explicitly with ``REPRO_NATIVE=0``; :func:`native_status` reports what
happened for benchmark metadata and debugging.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import subprocess
import sys
import sysconfig
from pathlib import Path
from typing import Callable, Optional

from ..core.serialize import resolve_cache_dir

_SOURCE = Path(__file__).with_name("_batchstep.c")

#: Bump to invalidate cached binaries when the calling convention
#: changes without a source change (defensive; the digest covers the
#: normal case).
_ABI_TAG = 2

_loaded = False
_fused_step: Optional[Callable] = None
_camdn_advance: Optional[Callable] = None
_status = "not loaded"


def _compiler() -> list:
    """The C compiler command, as an argv prefix."""
    cc = os.environ.get("CC") or sysconfig.get_config_var("CC") or "cc"
    return cc.split()


def _build(so_path: Path) -> None:
    """Compile ``_batchstep.c`` into ``so_path`` (atomic publish).

    ``-ffp-contract=off`` matters: fused multiply-adds would change the
    last ulp of the rate/advance arithmetic and break the bit-identity
    contract with the Python path.
    """
    include = sysconfig.get_paths()["include"]
    tmp = so_path.with_suffix(f".tmp.{os.getpid()}.so")
    cmd = _compiler() + [
        "-O2",
        "-fPIC",
        "-shared",
        "-ffp-contract=off",
        f"-I{include}",
        str(_SOURCE),
        "-o",
        str(tmp),
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"cc failed ({proc.returncode}): "
                f"{proc.stderr.strip()[:400]}"
            )
        # fsync before the rename publishes the binary: a crash mid-way
        # leaves either no cache entry or a complete one, never a
        # truncated .so (the import-failure rebuild is the backstop,
        # not the first line of defense).
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, so_path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_from(so_path: Path):
    # The module name must match the C init symbol (PyInit__batchstep);
    # the module is loaded standalone and never placed in sys.modules.
    loader = importlib.machinery.ExtensionFileLoader(
        "_batchstep", str(so_path)
    )
    spec = importlib.util.spec_from_file_location(
        "_batchstep", str(so_path), loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def fused_step() -> Optional[Callable]:
    """The native ``fused_step`` callable, or ``None`` when unavailable.

    First call per process compiles (or reuses) the cached extension;
    later calls return the memoized result.
    """
    global _loaded, _fused_step, _camdn_advance, _status
    if _loaded:
        return _fused_step
    _loaded = True
    if os.environ.get("REPRO_NATIVE", "1") in ("0", "false", "no"):
        _status = "disabled by REPRO_NATIVE"
        return None
    try:
        digest = hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]
        # SOABI covers interpreter, version, abiflags and platform, so
        # incompatible builds sharing one home never collide on a .so.
        soabi = sysconfig.get_config_var("SOABI") \
            or sys.implementation.cache_tag
        tag = f"{soabi}-abi{_ABI_TAG}-{digest}"
        cache_dir = resolve_cache_dir("REPRO_NATIVE_CACHE", "native")
        if cache_dir is None:
            _status = "cache dir disabled"
            return None
        cache_dir.mkdir(parents=True, exist_ok=True)
        so_path = cache_dir / f"_batchstep-{tag}.so"
        if not so_path.exists():
            _build(so_path)
            module = _load_from(so_path)
        else:
            try:
                module = _load_from(so_path)
            except Exception:
                # A cached binary that fails to import (truncated write,
                # corruption) is invalidated and rebuilt once before
                # degrading to the Python path.
                so_path.unlink(missing_ok=True)
                _build(so_path)
                module = _load_from(so_path)
        _fused_step = module.fused_step
        _camdn_advance = module.camdn_advance
        _status = f"loaded ({so_path.name})"
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _fused_step = None
        _camdn_advance = None
        _status = f"unavailable: {type(exc).__name__}: {exc}"
    return _fused_step


def camdn_advance() -> Optional[Callable]:
    """The native CaMDN per-completion handler, or ``None``.

    Shares the load attempt with :func:`fused_step` (one extension
    module carries both entry points).
    """
    if not _loaded:
        fused_step()
    return _camdn_advance


def native_status() -> str:
    """Human-readable result of the last load attempt."""
    return _status


def reset_for_tests() -> None:
    """Forget the memoized load so tests can exercise both paths."""
    global _loaded, _fused_step, _camdn_advance, _status
    _loaded = False
    _fused_step = None
    _camdn_advance = None
    _status = "not loaded"
