"""Fluid discrete-event multi-tenant engine.

The engine advances a set of closed-loop inference streams over shared NPU
cores and shared DRAM bandwidth.  Every running instance executes one layer
at a time; a layer holds two fluid work quantities (compute cycles and DRAM
bytes) that drain at rates set by the core clock and the policy's bandwidth
shares.  A layer completes when both streams drain (double-buffered
compute/DMA overlap).  Events are layer completions, page-wait wakeups and
core handoffs; rates are recomputed after every event, which makes the
simulation exact for piecewise-constant shares.

The event loop runs on a structure-of-arrays kernel
(:class:`~repro.sim.kernel.RunningKernel`): remaining compute/DRAM work and
the applied rates live in flat arrays, so the per-event min-dt search,
fluid advance and completion scan are batch operations instead of
per-instance Python calls.  Waiting-set wakeups sit in an indexed min-heap
with lazy invalidation, so timeout processing is O(1) peeks except at the
events where a waiter is actually due.  Rate recomputation is driven by
explicit invalidation notifications at the exact state transitions that
can change shares — membership changes always invalidate; layer-work
changes only invalidate policies whose shares track task progress
(:attr:`SchedulerPolicy.dynamic_rates`) — replacing the coarse dirty flag
that previously forced a share recomputation after every grant.

When the policy's rates are static and no waiter or queued task can
intervene, the loop drops into a **steady-interval fast-forward**
(:meth:`MultiTenantEngine._fast_forward`): the run of consecutive layer
completions is executed in a tight kernel-only loop that skips rate
recomputation, wait-heap peeks and dispatch checks entirely.  Each
piecewise-constant interval is still stepped individually — exactness (and
bit-identity with the legacy scan loop) requires draining every interval
with the same arithmetic — so the fast-forward elides bookkeeping, never
events.

The pre-kernel per-instance scan loop is retained for one release behind
``legacy_loop=True`` (or ``REPRO_LEGACY_ENGINE=1``) as an equivalence
oracle: both loops must produce byte-identical summary metrics.

This substrate replaces the paper's in-house cycle-accurate simulator on
DRAMsim3; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..config import SoCConfig
from ..errors import SimulationError
from .kernel import RunningKernel
from .metrics import MetricsCollector

if TYPE_CHECKING:  # circular at runtime: schedulers.base uses sim.task
    from ..schedulers.base import SchedulerPolicy
    from .trace import TraceRecorder
from .task import InstanceState, TaskInstance
from .workload import ClosedLoopWorkload

#: Hard cap on engine iterations; generous versus any real experiment and
#: purely a runaway guard.
_MAX_EVENTS = 5_000_000

#: Tolerance for "a waiter is due" checks (matches the legacy loop).
_WAKE_EPS = 1e-12


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    scheduler_name: str
    sim_time_s: float
    metrics: MetricsCollector
    scheduler_stats: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds the engine run took (observability only).
    wall_time_s: float = 0.0
    #: Number of engine events processed (deterministic per scenario).
    events_processed: int = 0

    @property
    def events_per_s(self) -> float:
        """Engine throughput (events per wall-clock second)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_processed / self.wall_time_s

    def summary(self) -> Dict[str, float]:
        summary = self.metric_summary()
        summary["wall_time_s"] = self.wall_time_s
        summary["events_processed"] = self.events_processed
        return summary

    def metric_summary(self) -> Dict[str, float]:
        """Simulated-outcome metrics only (no wall-clock keys).

        This is the byte-identity surface: two engines (or backends, or
        cache layers) agree iff their ``metric_summary()`` dicts are
        byte-identical under ``json.dumps``.
        """
        return {
            "sim_time_s": self.sim_time_s,
            "inferences": self.metrics.num_inferences,
            "avg_latency_ms": self.metrics.macro_avg_latency_s() * 1e3,
            "p99_latency_ms": self.metrics.p99_latency_s() * 1e3,
            "avg_dram_mb": self.metrics.macro_avg_dram_bytes() / 1e6,
            "hit_rate": self.metrics.overall_hit_rate(),
            "qos_violations": self.metrics.qos_violation_count(),
        }


class MultiTenantEngine:
    """Simulates a workload under one scheduling policy."""

    def __init__(self, soc: SoCConfig, scheduler: "SchedulerPolicy",
                 workload: ClosedLoopWorkload,
                 trace: Optional["TraceRecorder"] = None,
                 legacy_loop: Optional[bool] = None,
                 kernel_backend: Optional[str] = None) -> None:
        if legacy_loop is None:
            legacy_loop = bool(os.environ.get("REPRO_LEGACY_ENGINE"))
        self.soc = soc
        self.scheduler = scheduler
        self.workload = workload
        self.metrics = MetricsCollector()
        self.trace = trace
        self.legacy_loop = legacy_loop
        self.now = 0.0
        self.events_processed = 0
        self._dynamic_rates = scheduler.dynamic_rates
        # Optional fused end+begin scheduler hook (see
        # _process_completions); policies without it use the split path.
        self._advance_layer = getattr(scheduler, "advance_layer", None)
        self._shares_fn = scheduler.bandwidth_shares_list
        self._positive_shares = getattr(scheduler, "positive_shares",
                                        False)
        self._queued: List[TaskInstance] = []
        self._active: Dict[str, TaskInstance] = {}
        self._free_cores = soc.num_npu_cores
        self._core_grant: Dict[str, int] = {}
        # SoC constants and per-width uniform efficiencies, cached off
        # the per-event rate path.
        self._total_bw = soc.dram.total_bandwidth_bytes_per_s
        self._freq = soc.npu.frequency_hz
        self._uniform_eff: Dict[int, Optional[float]] = {}
        # SoA kernel over the RUNNING set (kernel loop).
        self._kernel = RunningKernel(force_backend=kernel_backend)
        self._rates_valid = False
        # WAITING_PAGES instances, insertion-ordered (grant-retry order is
        # observable policy state, so iteration order must be stable).
        self._waiting_set: Dict[str, TaskInstance] = {}
        # Lazily-invalidated wakeup min-heap: (wake_time, seq) entries;
        # an entry is live iff _wait_seq maps its instance to its seq.
        self._wait_heap: List[Tuple[float, int, TaskInstance]] = []
        self._wait_seq: Dict[str, int] = {}
        self._next_seq = 0
        # Legacy-loop bookkeeping (pre-kernel engine).
        self._running_set: Dict[str, TaskInstance] = {}
        self._rates_cache: Dict[str, tuple] = {}
        self._rates_dirty = True

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the workload to completion."""
        start = time.perf_counter()
        self.scheduler.attach(self.soc)
        self._dynamic_rates = self.scheduler.dynamic_rates
        self._queued.extend(self.workload.initial_instances())
        if self.legacy_loop:
            self._legacy_run_loop()
        else:
            self._kernel_run_loop()
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            sim_time_s=self.now,
            metrics=self.metrics,
            scheduler_stats=self.scheduler.stats(),
            wall_time_s=time.perf_counter() - start,
            events_processed=self.events_processed,
        )

    # ------------------------------------------------------------------
    # Kernel event loop
    # ------------------------------------------------------------------

    def _kernel_run_loop(self) -> None:
        self._dispatch_queued()
        dynamic = self._dynamic_rates
        kernel = self._kernel
        while self._active or self._queued:
            if self.events_processed >= _MAX_EVENTS:
                raise SimulationError(
                    "event cap exceeded; runaway simulation"
                )
            if not self._rates_valid:
                self._recompute_rates()
            if not dynamic and not self._wait_heap and not self._queued:
                if self._fast_forward():
                    # Finish the interrupted event's remaining phases:
                    # a completion may have queued a successor stream or
                    # parked an instance on the wait heap.
                    if self._wait_heap:
                        self._process_timeouts()
                    if self._queued:
                        self._dispatch_queued()
                    continue
            wait_dt = math.inf
            if self._wait_heap:
                wake = self._peek_wake_time()
                if not math.isinf(wake):
                    wait_dt = wake - self.now
                    if wait_dt < 0.0:
                        wait_dt = 0.0
            dt, finished = kernel.step(wait_dt)
            if math.isinf(dt):
                raise SimulationError(
                    "deadlock: active instances but no future event"
                )
            self.now += dt
            if dynamic and kernel.insts:
                self._rates_valid = False
            self.events_processed += 1
            if finished:
                self._process_completions(finished)
            if self._wait_heap:
                self._process_timeouts()
            if self._queued:
                self._dispatch_queued()

    def _fast_forward(self) -> bool:
        """Steady-interval fast-forward for static-rate policies.

        Preconditions (checked by the caller): rates are valid and cannot
        drift between events (``dynamic_rates`` is False), no instance is
        waiting for pages, and nothing is queued — so until a membership
        change every event is a layer completion of a running instance.
        The run of consecutive completions is executed in a tight loop
        over the kernel alone; rate recomputation, wait-heap peeks and
        dispatch checks are skipped until a grant or task finish breaks
        the steady interval.  Returns True if any events were processed.
        """
        kernel = self._kernel
        step = kernel.step
        processed = False
        while (
            self._rates_valid
            and not self._wait_heap
            and not self._queued
            and self.events_processed < _MAX_EVENTS
        ):
            dt, finished = step(math.inf)
            if math.isinf(dt):
                break
            self.now += dt
            self.events_processed += 1
            processed = True
            if finished:
                self._process_completions(finished)
            if not self._active:
                break
        return processed

    def _recompute_rates(self) -> None:
        """Install per-position rates from the policy's shares.

        The DRAM rate is clamped to >= 1e-6 bytes/s here — once, at the
        single place rates are produced — so the min-dt search and the
        fluid advance always use the same (finite-progress) rate.  The
        legacy loop clamped only in the dt search, so a near-zero share
        could yield a finite dt with no matching progress.
        """
        kernel = self._kernel
        insts = kernel.insts
        n = len(insts)
        if not n:
            kernel.set_rates([], [])
            self._rates_valid = True
            return
        scheduler = self.scheduler
        rem_c, rem_d = kernel.rem_views()
        shares = self._shares_fn(insts, rem_c, rem_d, self.now)
        if shares is None:
            # Dict-path fallback: sync fluid state so the policy sees
            # current remaining work, then look shares up by id.
            kernel.sync_all()
            running = {inst.instance_id: inst for inst in insts}
            share_map = scheduler.bandwidth_shares(running, self.now)
            shares = [share_map.get(inst.instance_id, 0.0)
                      for inst in insts]
        total_bw = self._total_bw
        rate_c = [self._freq] * n
        if not self._positive_shares and min(shares) <= 0:
            for i in range(n):
                if shares[i] <= 0 and rem_d[i] > 0:
                    raise SimulationError(
                        f"{insts[i].instance_id} has pending DRAM work "
                        f"but zero bandwidth"
                    )
        try:
            efficiency = self._uniform_eff[n]
        except KeyError:
            efficiency = scheduler.uniform_dram_efficiency(n)
            self._uniform_eff[n] = efficiency
        if efficiency is not None:
            rate_d = [
                r if (r := total_bw * s * efficiency) > 1e-6 else 1e-6
                for s in shares
            ]
        else:
            rate_d = [0.0] * n
            for i in range(n):
                rate = total_bw * shares[i] * \
                    scheduler.dram_efficiency(insts[i], n)
                rate_d[i] = rate if rate > 1e-6 else 1e-6
        kernel.set_rates(rate_c, rate_d)
        self._rates_valid = True

    # ------------------------------------------------------------------
    # Explicit rate-invalidation notifications
    # ------------------------------------------------------------------

    def _notify_membership_change(self) -> None:
        """The RUNNING set gained or lost a member: shares always change
        (equal splits, demand pools and DRAM efficiency all depend on
        membership)."""
        self._rates_valid = False

    def _notify_work_change(self, inst: TaskInstance) -> None:
        """A running instance started a new layer.  Only policies whose
        shares track task progress care; membership-only policies keep
        their cached rates — this is the precise notification that
        replaces the legacy loop's coarse dirty flag."""
        if self.scheduler.dynamic_rates:
            self._rates_valid = False

    # ------------------------------------------------------------------
    # Wait heap (lazy invalidation)
    # ------------------------------------------------------------------

    def _push_waiter(self, inst: TaskInstance) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._wait_seq[inst.instance_id] = seq
        heappush(self._wait_heap, (inst.wake_time, seq, inst))

    def _peek_wake_time(self) -> float:
        """Earliest live wakeup (inf when none); pops stale entries."""
        heap = self._wait_heap
        while heap:
            wake, seq, inst = heap[0]
            if self._wait_seq.get(inst.instance_id) == seq:
                return wake
            heappop(heap)
        return math.inf

    # ------------------------------------------------------------------
    # Event handling (kernel loop)
    # ------------------------------------------------------------------

    def _process_completions(self, finished_pos: List[int]) -> None:
        kernel = self._kernel
        scheduler = self.scheduler
        trace = self.trace
        now = self.now
        # Sync fluid state while positions are valid, then snapshot by
        # reference: handling a completion can reshape the kernel (task
        # finish, page wait), invalidating positions.
        finished = kernel.take_finished(finished_pos)
        advance = self._advance_layer
        for inst in finished:
            if trace is not None:
                trace.end(inst.instance_id, now,
                          dram_bytes=inst.work.dram_bytes)
            # Inlined TaskInstance.account_layer (hot path; a completed
            # layer always has work installed).
            work = inst.work
            inst.dram_bytes_total += work.dram_bytes
            inst.hit_bytes_total += work.hit_bytes
            inst.access_bytes_total += work.access_bytes
            inst.layers_executed += 1
            if advance is not None and \
                    inst.layer_index + 1 < len(inst.graph.layers):
                # Fused end-of-layer + next-layer selection: one
                # scheduler call per completion (identical semantics to
                # on_layer_end -> layer_index += 1 -> begin_layer).
                work, timeout = advance(inst, now)
                self._apply_grant(inst, work, timeout)
                continue
            scheduler.on_layer_end(inst, now)
            inst.layer_index += 1
            if inst.layer_index >= len(inst.graph.layers):
                self._finish_instance(inst)
            else:
                work, timeout = scheduler.begin_layer(inst, now)
                self._apply_grant(inst, work, timeout)
        if self._waiting_set:
            self._poll_waiting()

    def _finish_instance(self, inst: TaskInstance) -> None:
        inst.state = InstanceState.DONE
        inst.finish_time = self.now
        self.scheduler.on_task_end(inst, self.now)
        self._free_cores += self._core_grant.pop(inst.instance_id)
        del self._active[inst.instance_id]
        if inst.instance_id in self._kernel.pos:
            self._kernel.remove(inst)
        self._waiting_set.pop(inst.instance_id, None)
        self._wait_seq.pop(inst.instance_id, None)
        self._notify_membership_change()
        if not self.workload.is_warmup(inst):
            self.metrics.record(inst)
        next_inst = self.workload.next_instance(inst.stream_id, self.now)
        if next_inst is not None:
            self._queued.append(next_inst)

    def _begin_layer(self, inst: TaskInstance) -> None:
        work, timeout = self.scheduler.begin_layer(inst, self.now)
        self._apply_grant(inst, work, timeout)

    def _apply_grant(self, inst: TaskInstance, work, timeout: float
                     ) -> None:
        kernel = self._kernel
        iid = inst.instance_id
        if work is None:
            inst.state = InstanceState.WAITING_PAGES
            if math.isinf(timeout):
                raise SimulationError(
                    f"{iid}: ungranted wait with no timeout"
                )
            inst.wake_time = self.now + max(timeout, 0.0)
            if iid in kernel.pos:
                kernel.remove(inst)
                self._notify_membership_change()
            self._waiting_set[iid] = inst
            self._push_waiter(inst)
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(iid, SpanKind.WAIT_PAGES,
                                 inst.layer_index, self.now)
        else:
            # Inlined TaskInstance.begin_work (hot path).
            inst.work = work
            inst.rem_compute_cycles = work.compute_cycles
            inst.rem_dram_bytes = work.dram_bytes
            inst.state = InstanceState.RUNNING
            inst.wake_time = math.inf
            if self._waiting_set and \
                    self._waiting_set.pop(iid, None) is not None:
                self._wait_seq.pop(iid, None)
            pos = kernel.pos.get(iid)
            if pos is not None:
                kernel.set_work(inst, pos)
                # Work-change notification, inlined: only share policies
                # that track task progress care (see
                # _notify_work_change).
                if self._dynamic_rates:
                    self._rates_valid = False
            else:
                kernel.add(inst)
                self._notify_membership_change()
            if inst.start_time is None:
                inst.start_time = self.now
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(iid, SpanKind.LAYER,
                                 inst.layer_index, self.now)

    def _poll_waiting(self) -> None:
        for inst in list(self._waiting_set.values()):
            work, timeout = self.scheduler.poll_layer(inst, self.now)
            if work is not None:
                self._apply_grant(inst, work, timeout)
            # An unsuccessful poll must NOT reset the wake timer, or a
            # frequently-polled task would never reach its timeout and
            # would wait for pages indefinitely instead of downgrading.

    def _process_timeouts(self) -> None:
        if self._peek_wake_time() - self.now > _WAKE_EPS:
            return
        now = self.now
        due = [inst for inst in self._waiting_set.values()
               if inst.wake_time - now <= _WAKE_EPS]
        for inst in due:
            work, timeout = self.scheduler.timeout_layer(inst, self.now)
            self._apply_grant(inst, work, timeout)

    def _dispatch_queued(self) -> None:
        still_queued: List[TaskInstance] = []
        for inst in self._queued:
            cores = self.scheduler.cores_for(inst, self._free_cores)
            if 0 < cores <= self._free_cores:
                self._free_cores -= cores
                inst.cores = cores
                self._core_grant[inst.instance_id] = cores
                self._active[inst.instance_id] = inst
                self.scheduler.on_task_start(inst, self.now)
                self._begin_layer(inst)
            else:
                still_queued.append(inst)
        self._queued = still_queued

    # ------------------------------------------------------------------
    # Legacy per-instance scan loop (pre-kernel engine)
    #
    # Kept verbatim for one release as the equivalence oracle for the
    # kernel loop; selected with ``legacy_loop=True`` or the
    # ``REPRO_LEGACY_ENGINE=1`` environment variable.  Do not optimize.
    # ------------------------------------------------------------------

    def _legacy_run_loop(self) -> None:
        self._legacy_dispatch_queued()
        for _ in range(_MAX_EVENTS):
            if not self._active and not self._queued:
                break
            rates = self._legacy_rates()
            dt = self._legacy_next_event_dt(rates)
            if math.isinf(dt):
                raise SimulationError(
                    "deadlock: active instances but no future event"
                )
            self._legacy_advance(dt, rates)
            self.events_processed += 1
            self._legacy_process_completions()
            self._legacy_process_timeouts()
            self._legacy_dispatch_queued()
        else:
            raise SimulationError("event cap exceeded; runaway simulation")

    def _legacy_rates(self) -> Dict[str, tuple]:
        """(compute_rate cycles/s, dram_rate bytes/s) per running task."""
        if not self._rates_dirty:
            return self._rates_cache
        running = self._running_set
        shares = self.scheduler.bandwidth_shares(running, self.now)
        total_bw = self.soc.dram.total_bandwidth_bytes_per_s
        freq = self.soc.npu.frequency_hz
        rates: Dict[str, tuple] = {}
        num_running = len(running)
        for iid, inst in running.items():
            share = shares.get(iid, 0.0)
            if share <= 0 and inst.rem_dram_bytes > 0:
                raise SimulationError(
                    f"{iid} has pending DRAM work but zero bandwidth"
                )
            efficiency = self.scheduler.dram_efficiency(inst, num_running)
            rates[iid] = (freq, total_bw * share * efficiency)
        self._rates_cache = rates
        self._rates_dirty = False
        return rates

    def _legacy_next_event_dt(self, rates: Dict[str, tuple]) -> float:
        dt = math.inf
        for iid, inst in self._running_set.items():
            compute_rate, dram_rate = rates[iid]
            dt = min(
                dt,
                inst.time_to_finish_layer(
                    compute_rate, max(dram_rate, 1e-6)
                ),
            )
        now = self.now
        for inst in self._waiting_set.values():
            dt = min(dt, max(inst.wake_time - now, 0.0))
        return dt

    def _legacy_advance(self, dt: float,
                        rates: Dict[str, tuple]) -> None:
        if dt < 0:
            raise SimulationError(f"negative time step {dt}")
        for iid, inst in self._running_set.items():
            compute_rate, dram_rate = rates[iid]
            inst.advance(dt, compute_rate, dram_rate)
        self.now += dt
        if self._running_set and self.scheduler.dynamic_rates:
            self._rates_dirty = True

    def _legacy_process_completions(self) -> None:
        finished_layers = [
            inst for inst in self._running_set.values()
            if inst.layer_finished()
        ]
        pages_freed = False
        for inst in finished_layers:
            if self.trace is not None:
                self.trace.end(inst.instance_id, self.now,
                               dram_bytes=inst.work.dram_bytes)
            inst.account_layer()
            self.scheduler.on_layer_end(inst, self.now)
            inst.layer_index += 1
            pages_freed = True
            if inst.done_all_layers:
                self._legacy_finish_instance(inst)
            else:
                self._legacy_begin_layer(inst)
        if pages_freed:
            self._legacy_poll_waiting()

    def _legacy_finish_instance(self, inst: TaskInstance) -> None:
        inst.state = InstanceState.DONE
        inst.finish_time = self.now
        self.scheduler.on_task_end(inst, self.now)
        self._free_cores += self._core_grant.pop(inst.instance_id)
        del self._active[inst.instance_id]
        self._running_set.pop(inst.instance_id, None)
        self._waiting_set.pop(inst.instance_id, None)
        self._rates_dirty = True
        if not self.workload.is_warmup(inst):
            self.metrics.record(inst)
        next_inst = self.workload.next_instance(inst.stream_id, self.now)
        if next_inst is not None:
            self._queued.append(next_inst)

    def _legacy_begin_layer(self, inst: TaskInstance) -> None:
        work, timeout = self.scheduler.begin_layer(inst, self.now)
        self._legacy_apply_grant(inst, work, timeout)

    def _legacy_apply_grant(self, inst: TaskInstance, work,
                            timeout: float) -> None:
        self._rates_dirty = True
        if work is None:
            inst.state = InstanceState.WAITING_PAGES
            if math.isinf(timeout):
                raise SimulationError(
                    f"{inst.instance_id}: ungranted wait with no timeout"
                )
            inst.wake_time = self.now + max(timeout, 0.0)
            self._running_set.pop(inst.instance_id, None)
            self._waiting_set[inst.instance_id] = inst
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(inst.instance_id, SpanKind.WAIT_PAGES,
                                 inst.layer_index, self.now)
        else:
            inst.begin_work(work)
            inst.wake_time = math.inf
            self._waiting_set.pop(inst.instance_id, None)
            self._running_set[inst.instance_id] = inst
            if inst.start_time is None:
                inst.start_time = self.now
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(inst.instance_id, SpanKind.LAYER,
                                 inst.layer_index, self.now)

    def _legacy_poll_waiting(self) -> None:
        for inst in list(self._waiting_set.values()):
            work, timeout = self.scheduler.poll_layer(inst, self.now)
            if work is not None:
                self._legacy_apply_grant(inst, work, timeout)

    def _legacy_process_timeouts(self) -> None:
        for inst in list(self._waiting_set.values()):
            if inst.wake_time - self.now > _WAKE_EPS:
                continue
            work, timeout = self.scheduler.timeout_layer(inst, self.now)
            self._legacy_apply_grant(inst, work, timeout)

    def _legacy_dispatch_queued(self) -> None:
        still_queued: List[TaskInstance] = []
        for inst in self._queued:
            cores = self.scheduler.cores_for(inst, self._free_cores)
            if 0 < cores <= self._free_cores:
                self._free_cores -= cores
                inst.cores = cores
                self._core_grant[inst.instance_id] = cores
                self._active[inst.instance_id] = inst
                self.scheduler.on_task_start(inst, self.now)
                self._legacy_begin_layer(inst)
            else:
                still_queued.append(inst)
        self._queued = still_queued
