"""Fluid discrete-event multi-tenant engine.

The engine advances a set of closed-loop inference streams over shared NPU
cores and shared DRAM bandwidth.  Every running instance executes one layer
at a time; a layer holds two fluid work quantities (compute cycles and DRAM
bytes) that drain at rates set by the core clock and the policy's bandwidth
shares.  A layer completes when both streams drain (double-buffered
compute/DMA overlap).  Events are layer completions, page-wait wakeups and
core handoffs; rates are recomputed after every event, which makes the
simulation exact for piecewise-constant shares.

The event loop keeps incremental bookkeeping instead of rescanning all
active instances at every event: the RUNNING and WAITING_PAGES sets are
maintained at state transitions, and per-task rates are cached under a
dirty flag that is raised whenever the running set or any layer work
changes (and after every advance for policies whose shares track task
progress — see :attr:`SchedulerPolicy.dynamic_rates`).  Event semantics
are identical to the full-rescan loop; only the bookkeeping is
incremental.

This substrate replaces the paper's in-house cycle-accurate simulator on
DRAMsim3; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..config import SoCConfig
from ..errors import SimulationError
from .metrics import MetricsCollector

if TYPE_CHECKING:  # circular at runtime: schedulers.base uses sim.task
    from ..schedulers.base import SchedulerPolicy
    from .trace import TraceRecorder
from .task import InstanceState, TaskInstance
from .workload import ClosedLoopWorkload

#: Hard cap on engine iterations; generous versus any real experiment and
#: purely a runaway guard.
_MAX_EVENTS = 5_000_000


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    scheduler_name: str
    sim_time_s: float
    metrics: MetricsCollector
    scheduler_stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        return {
            "sim_time_s": self.sim_time_s,
            "inferences": self.metrics.num_inferences,
            "avg_latency_ms": self.metrics.macro_avg_latency_s() * 1e3,
            "p99_latency_ms": self.metrics.p99_latency_s() * 1e3,
            "avg_dram_mb": self.metrics.macro_avg_dram_bytes() / 1e6,
            "hit_rate": self.metrics.overall_hit_rate(),
            "qos_violations": self.metrics.qos_violation_count(),
        }


class MultiTenantEngine:
    """Simulates a workload under one scheduling policy."""

    def __init__(self, soc: SoCConfig, scheduler: "SchedulerPolicy",
                 workload: ClosedLoopWorkload,
                 trace: Optional["TraceRecorder"] = None) -> None:
        self.soc = soc
        self.scheduler = scheduler
        self.workload = workload
        self.metrics = MetricsCollector()
        self.trace = trace
        self.now = 0.0
        self._queued: List[TaskInstance] = []
        self._active: Dict[str, TaskInstance] = {}
        self._free_cores = soc.num_npu_cores
        self._core_grant: Dict[str, int] = {}
        # Incremental state-set bookkeeping: every active instance lives in
        # exactly one of these two dicts, maintained at state transitions.
        self._running_set: Dict[str, TaskInstance] = {}
        self._waiting_set: Dict[str, TaskInstance] = {}
        self._rates_cache: Dict[str, tuple] = {}
        self._rates_dirty = True

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the workload to completion."""
        self.scheduler.attach(self.soc)
        self._queued.extend(self.workload.initial_instances())
        self._dispatch_queued()

        for _ in range(_MAX_EVENTS):
            if not self._active and not self._queued:
                break
            rates = self._rates()
            dt = self._next_event_dt(rates)
            if math.isinf(dt):
                raise SimulationError(
                    "deadlock: active instances but no future event"
                )
            self._advance(dt, rates)
            self._process_completions()
            self._process_timeouts()
            self._dispatch_queued()
        else:
            raise SimulationError("event cap exceeded; runaway simulation")

        return SimulationResult(
            scheduler_name=self.scheduler.name,
            sim_time_s=self.now,
            metrics=self.metrics,
            scheduler_stats=self.scheduler.stats(),
        )

    # ------------------------------------------------------------------
    # Event loop pieces
    # ------------------------------------------------------------------

    def _rates(self) -> Dict[str, tuple]:
        """(compute_rate cycles/s, dram_rate bytes/s) per running task.

        Recomputed only when dirty: membership or layer work changed, or
        the policy's shares track task progress (``dynamic_rates``).
        """
        if not self._rates_dirty:
            return self._rates_cache
        running = self._running_set
        shares = self.scheduler.bandwidth_shares(running, self.now)
        total_bw = self.soc.dram.total_bandwidth_bytes_per_s
        freq = self.soc.npu.frequency_hz
        rates: Dict[str, tuple] = {}
        num_running = len(running)
        for iid, inst in running.items():
            share = shares.get(iid, 0.0)
            if share <= 0 and inst.rem_dram_bytes > 0:
                raise SimulationError(
                    f"{iid} has pending DRAM work but zero bandwidth"
                )
            efficiency = self.scheduler.dram_efficiency(inst, num_running)
            rates[iid] = (freq, total_bw * share * efficiency)
        self._rates_cache = rates
        self._rates_dirty = False
        return rates

    def _next_event_dt(self, rates: Dict[str, tuple]) -> float:
        dt = math.inf
        for iid, inst in self._running_set.items():
            compute_rate, dram_rate = rates[iid]
            dt = min(
                dt,
                inst.time_to_finish_layer(
                    compute_rate, max(dram_rate, 1e-6)
                ),
            )
        now = self.now
        for inst in self._waiting_set.values():
            dt = min(dt, max(inst.wake_time - now, 0.0))
        return dt

    def _advance(self, dt: float, rates: Dict[str, tuple]) -> None:
        if dt < 0:
            raise SimulationError(f"negative time step {dt}")
        for iid, inst in self._running_set.items():
            compute_rate, dram_rate = rates[iid]
            inst.advance(dt, compute_rate, dram_rate)
        self.now += dt
        if self._running_set and self.scheduler.dynamic_rates:
            self._rates_dirty = True

    def _process_completions(self) -> None:
        finished_layers = [
            inst for inst in self._running_set.values()
            if inst.layer_finished()
        ]
        pages_freed = False
        for inst in finished_layers:
            if self.trace is not None:
                self.trace.end(inst.instance_id, self.now,
                               dram_bytes=inst.work.dram_bytes)
            inst.account_layer()
            self.scheduler.on_layer_end(inst, self.now)
            inst.layer_index += 1
            pages_freed = True
            if inst.done_all_layers:
                self._finish_instance(inst)
            else:
                self._begin_layer(inst, first_attempt=True)
        if pages_freed:
            self._poll_waiting()

    def _finish_instance(self, inst: TaskInstance) -> None:
        inst.state = InstanceState.DONE
        inst.finish_time = self.now
        self.scheduler.on_task_end(inst, self.now)
        self._free_cores += self._core_grant.pop(inst.instance_id)
        del self._active[inst.instance_id]
        self._running_set.pop(inst.instance_id, None)
        self._waiting_set.pop(inst.instance_id, None)
        self._rates_dirty = True
        if not self.workload.is_warmup(inst):
            self.metrics.record(inst)
        next_inst = self.workload.next_instance(inst.stream_id, self.now)
        if next_inst is not None:
            self._queued.append(next_inst)

    def _begin_layer(self, inst: TaskInstance,
                     first_attempt: bool) -> None:
        work, timeout = self.scheduler.begin_layer(inst, self.now)
        self._apply_grant(inst, work, timeout)

    def _apply_grant(self, inst: TaskInstance, work, timeout: float
                     ) -> None:
        self._rates_dirty = True
        if work is None:
            inst.state = InstanceState.WAITING_PAGES
            if math.isinf(timeout):
                raise SimulationError(
                    f"{inst.instance_id}: ungranted wait with no timeout"
                )
            inst.wake_time = self.now + max(timeout, 0.0)
            self._running_set.pop(inst.instance_id, None)
            self._waiting_set[inst.instance_id] = inst
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(inst.instance_id, SpanKind.WAIT_PAGES,
                                 inst.layer_index, self.now)
        else:
            inst.begin_work(work)
            inst.wake_time = math.inf
            self._waiting_set.pop(inst.instance_id, None)
            self._running_set[inst.instance_id] = inst
            if inst.start_time is None:
                inst.start_time = self.now
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(inst.instance_id, SpanKind.LAYER,
                                 inst.layer_index, self.now)

    def _poll_waiting(self) -> None:
        for inst in list(self._waiting_set.values()):
            work, timeout = self.scheduler.poll_layer(inst, self.now)
            if work is not None:
                self._apply_grant(inst, work, timeout)
            # An unsuccessful poll must NOT reset the wake timer, or a
            # frequently-polled task would never reach its timeout and
            # would wait for pages indefinitely instead of downgrading.

    def _process_timeouts(self) -> None:
        for inst in list(self._waiting_set.values()):
            if inst.wake_time - self.now > 1e-12:
                continue
            work, timeout = self.scheduler.timeout_layer(inst, self.now)
            self._apply_grant(inst, work, timeout)

    def _dispatch_queued(self) -> None:
        still_queued: List[TaskInstance] = []
        for inst in self._queued:
            cores = self.scheduler.cores_for(inst, self._free_cores)
            if 0 < cores <= self._free_cores:
                self._free_cores -= cores
                inst.cores = cores
                self._core_grant[inst.instance_id] = cores
                self._active[inst.instance_id] = inst
                self.scheduler.on_task_start(inst, self.now)
                self._begin_layer(inst, first_attempt=True)
            else:
                still_queued.append(inst)
        self._queued = still_queued
