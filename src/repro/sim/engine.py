"""Fluid discrete-event multi-tenant engine.

The engine advances a set of inference streams over shared NPU cores and
shared DRAM bandwidth.  Every running instance executes one layer at a
time; a layer holds two fluid work quantities (compute cycles and DRAM
bytes) that drain at rates set by the core clock and the policy's
bandwidth shares.  A layer completes when both streams drain
(double-buffered compute/DMA overlap).  Events are layer completions,
page-wait wakeups, core handoffs and **scenario timeline events** —
tenant admissions, open-loop arrivals and tenant departures scheduled by
the :class:`~repro.sim.workload.ScenarioWorkload`.  Rates are recomputed
after every event, which makes the simulation exact for
piecewise-constant shares.

The event loop runs on a structure-of-arrays kernel
(:class:`~repro.sim.kernel.RunningKernel`): remaining compute/DRAM work and
the applied rates live in flat arrays, so the per-event min-dt search,
fluid advance and completion scan are batch operations instead of
per-instance Python calls.  Waiting-set wakeups sit in an indexed min-heap
with lazy invalidation, so timeout processing is O(1) peeks except at the
events where a waiter is actually due.  Rate recomputation is driven by
explicit invalidation notifications at the exact state transitions that
can change shares — membership changes always invalidate; layer-work
changes only invalidate policies whose shares track task progress
(:attr:`SchedulerPolicy.dynamic_rates`).

The event loop is a **batched multi-event stepper**
(:meth:`MultiTenantEngine._batch_run`): one Python-level entry processes
a whole run of events in a tight loop, leaving only when the outer loop
genuinely has work to do (a wakeup or timeline event is due, a task is
queued for dispatch, or the policy's rate rule changed epoch).  Inside
the batch, each event is one fused call — rate recomputation, min-dt
search, fluid advance and completion scan in a single step — through
the native kernel (:mod:`repro.sim.native`, a small C extension
compiled on demand) when the policy declares a fusable rate rule
(:meth:`~repro.schedulers.base.SchedulerPolicy.rate_kernel`), and
through :meth:`RunningKernel.step` otherwise.  Static-rate policies ride
the same batch loop (the former special-cased fast-forward); their rates
are simply not recomputed until invalidated.  Each piecewise-constant
interval is still stepped individually — exactness requires draining
every interval with the same arithmetic — so batching elides
bookkeeping, never events, and every fused path is bit-identical to the
split Python path by construction.

Dynamic tenancy: a tenant that joins mid-run is admitted through the
scheduler's :meth:`~repro.schedulers.base.SchedulerPolicy.on_tenant_admit`
hook before its first inference dispatches; a tenant that leaves is
retired preemptively — an in-flight inference is aborted, its cores are
returned, and the scheduler's per-task end hook releases its cache pages
and region (so CaMDN's region resizing is exercised by churn) before
:meth:`~repro.schedulers.base.SchedulerPolicy.on_tenant_retire` fires.

This substrate replaces the paper's in-house cycle-accurate simulator on
DRAMsim3; see DESIGN.md for the substitution argument.  The pre-kernel
per-instance scan loop that shipped one release behind (``legacy_loop``)
has been removed; kernel-loop equivalence is pinned by the committed
20-scenario reference summaries (``tests/data/
metric_summary_reference.json``).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..config import SoCConfig
from ..errors import SimulationError
from . import native
from .faults import (
    CORE_OFFLINE,
    DRAM_DEGRADE,
    ONSET,
    PAGE_RETIRE,
    FaultEvent,
    FaultRuntime,
    FaultSpec,
)
from .kernel import RunningKernel
from .metrics import MetricsCollector

if TYPE_CHECKING:  # circular at runtime: schedulers.base uses sim.task
    from ..schedulers.base import SchedulerPolicy
    from .trace import EventTrace, EventTraceRecorder, TraceRecorder
from .task import InstanceState, TaskInstance
from .workload import ScenarioWorkload

#: Hard cap on engine iterations; generous versus any real experiment and
#: purely a runaway guard.
_MAX_EVENTS = 5_000_000

#: Tolerance for "a waiter / timeline event is due" checks.
_WAKE_EPS = 1e-12


@dataclass
class SimulationResult:
    """Outcome of one engine run."""

    scheduler_name: str
    sim_time_s: float
    metrics: MetricsCollector
    scheduler_stats: Dict[str, float] = field(default_factory=dict)
    #: Wall-clock seconds the engine run took (observability only).
    wall_time_s: float = 0.0
    #: Number of engine events processed (deterministic per scenario).
    events_processed: int = 0
    #: Inferences offered by the scenario (dispatched, backlogged or
    #: dropped by departures) — the open-loop demand side.
    offered_inferences: int = 0
    #: Inferences aborted by preemptive tenant departures (in flight or
    #: still queued for a core).
    cancelled_inferences: int = 0
    #: Inferences that ran all layers to the end (warmup included, so
    #: this can exceed ``metrics.num_inferences``).
    completed_inferences: int = 0
    #: Backlogged open-loop arrivals discarded by tenant departures.
    dropped_inferences: int = 0
    #: Offered arrival rate over the offer window divided by the
    #: completion rate over the full simulated time.  ~1.0 for
    #: closed-loop scenarios; > 1 when open-loop load outruns service
    #: (queues grow and the drain stretches past the window).
    offered_load_ratio: float = 1.0
    #: Event capture of the run (``run_scenario(capture_trace=True)``);
    #: excluded from serialization — traces persist via their own format.
    event_trace: Optional["EventTrace"] = field(
        default=None, repr=False, compare=False
    )
    #: Snapshot captured by ``run(snapshot_at_events=...)`` (None
    #: otherwise); excluded from serialization like ``event_trace``.
    last_snapshot: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    @property
    def events_per_s(self) -> float:
        """Engine throughput (events per wall-clock second)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_processed / self.wall_time_s

    def summary(self) -> Dict[str, float]:
        summary = self.metric_summary()
        summary["avg_queue_delay_ms"] = \
            self.metrics.avg_queue_delay_s() * 1e3 \
            if self.metrics.records else 0.0
        summary["offered_load_ratio"] = self.offered_load_ratio
        summary["cancelled_inferences"] = self.cancelled_inferences
        summary["dropped_inferences"] = self.dropped_inferences
        summary["wall_time_s"] = self.wall_time_s
        summary["events_processed"] = self.events_processed
        return summary

    def check_conservation(self) -> None:
        """Inference conservation: every offered arrival is accounted
        for exactly once.

        The engine drains before :meth:`MultiTenantEngine.run` returns
        (nothing stays in flight), so at rest the law reads
        ``offered == completed + cancelled + dropped``.  Violations mean
        lost or double-counted work — the invariant the scenario fuzzer
        leans on.

        Raises:
            SimulationError: the books don't balance.
        """
        accounted = (
            self.completed_inferences + self.cancelled_inferences
            + self.dropped_inferences
        )
        if self.offered_inferences != accounted:
            raise SimulationError(
                f"inference conservation violated: offered "
                f"{self.offered_inferences} != completed "
                f"{self.completed_inferences} + cancelled "
                f"{self.cancelled_inferences} + dropped "
                f"{self.dropped_inferences} (= {accounted})"
            )

    def metric_summary(self) -> Dict[str, float]:
        """Simulated-outcome metrics only (no wall-clock keys).

        This is the byte-identity surface: two engines (or backends, or
        cache layers) agree iff their ``metric_summary()`` dicts are
        byte-identical under ``json.dumps``.  Scenario-level additions
        (queueing delay, offered load) live in :meth:`summary` so the
        frozen closed-loop references stay valid.
        """
        return {
            "sim_time_s": self.sim_time_s,
            "inferences": self.metrics.num_inferences,
            "avg_latency_ms": self.metrics.macro_avg_latency_s() * 1e3,
            "p99_latency_ms": self.metrics.p99_latency_s() * 1e3,
            "avg_dram_mb": self.metrics.macro_avg_dram_bytes() / 1e6,
            "hit_rate": self.metrics.overall_hit_rate(),
            "qos_violations": self.metrics.qos_violation_count(),
        }


class MultiTenantEngine:
    """Simulates one scenario under one scheduling policy."""

    def __init__(self, soc: SoCConfig, scheduler: "SchedulerPolicy",
                 workload: ScenarioWorkload,
                 trace: Optional["TraceRecorder"] = None,
                 kernel_backend: Optional[str] = None,
                 use_native: Optional[bool] = None,
                 event_recorder: Optional["EventTraceRecorder"] = None,
                 faults: Optional[FaultSpec] = None,
                 ) -> None:
        self.soc = soc
        self.scheduler = scheduler
        self.workload = workload
        self.metrics = MetricsCollector()
        self.trace = trace
        # Event-trace capture (dispatch / completion / cancel events;
        # the workload records the scenario-timeline kinds).
        self.event_recorder = event_recorder
        self.now = 0.0
        self.events_processed = 0
        self.cancelled = 0
        self._completed = 0
        self._dynamic_rates = scheduler.dynamic_rates
        # Optional fused end+begin scheduler hook (see
        # _process_completions); policies without it use the split path.
        self._advance_layer = getattr(scheduler, "advance_layer", None)
        self._shares_fn = scheduler.bandwidth_shares_list
        self._positive_shares = getattr(scheduler, "positive_shares",
                                        False)
        self._queued: List[TaskInstance] = []
        self._active: Dict[str, TaskInstance] = {}
        #: stream_id -> in-flight instance id (dynamic-tenancy lookups).
        self._stream_active: Dict[str, str] = {}
        self._free_cores = soc.num_npu_cores
        self._core_grant: Dict[str, int] = {}
        # SoC constants and per-width uniform efficiencies, cached off
        # the per-event rate path.  Coerced to float so the native fused
        # step sees binary64 operands (int-valued configs divide to the
        # same quotients either way).
        self._total_bw = float(soc.dram.total_bandwidth_bytes_per_s)
        self._freq = float(soc.npu.frequency_hz)
        self._uniform_eff: Dict[int, Optional[float]] = {}
        # SoA kernel over the RUNNING set.
        self._kernel = RunningKernel(force_backend=kernel_backend)
        # Native fused stepper (None: pure-Python paths).  An explicit
        # kernel backend means a test is pinning the step arithmetic to
        # one implementation, so the fused path stands down.
        self._native = None
        if use_native is not False and kernel_backend is None:
            self._native = native.fused_step()
        # Fused rate mode, resolved from the policy's rate_kernel() per
        # rate epoch (see _resolve_rate_mode): 0 = split path,
        # 1 = demand_prop, 2 = slack_weighted, 3 = slack_throttled.
        self._fused_mode = 0
        self._mode_floor = 0.0
        self._mode_urgency = 0.0
        self._rate_epoch_seen = 0
        self._rates_valid = False
        # Scenario timeline: once the workload's scheduled events drain,
        # the flag keeps the hot loop at one boolean test per event
        # (pure closed-loop scenarios drain it at t=0).
        self._timeline_done = False
        # Fault-injection timeline (sim/faults.py).  Like the scenario
        # timeline, an absent or drained schedule costs the hot loop one
        # boolean test per event — fault-free runs stay byte-identical.
        self._fault_runtime: Optional[FaultRuntime] = None
        self._faults_done = True
        if faults is not None and faults.events:
            self._fault_runtime = FaultRuntime(faults)
            self._faults_done = False
        # Fault-window bookkeeping, keyed by event seq so overlapping
        # windows compose and expire exactly.
        self._base_bw = self._total_bw
        self._bw_factors: Dict[int, float] = {}
        self._cores_offline: Dict[int, int] = {}
        self._offline_total = 0
        # Watchdog budgets (see run()); REPRO_MAX_EVENTS overrides the
        # module-level runaway cap for every run in the process.
        self._max_events = int(
            os.environ.get("REPRO_MAX_EVENTS", _MAX_EVENTS)
        )
        self._deadline: Optional[float] = None
        # Checkpoint wiring (see run(checkpoint_every_s=...) and
        # sim/snapshot.py).  A run without checkpoints keeps the hook at
        # None, which costs the outer event loop one identity test per
        # iteration — checkpoint-free runs stay byte-identical.
        self._checkpoint_hook = None
        self._checkpoint_every_s: Optional[float] = None
        self._checkpoint_dir: Optional[str] = None
        self._checkpoint_next = 0.0
        self._snapshot_at_events: Optional[int] = None
        #: In-memory snapshot captured by the ``snapshot_at_events``
        #: test hook (None until the threshold is crossed).
        self.last_snapshot = None
        #: Number of on-disk checkpoints written by this run.
        self.checkpoints_written = 0
        # WAITING_PAGES instances, insertion-ordered (grant-retry order is
        # observable policy state, so iteration order must be stable).
        self._waiting_set: Dict[str, TaskInstance] = {}
        # Lazily-invalidated wakeup min-heap: (wake_time, seq) entries;
        # an entry is live iff _wait_seq maps its instance to its seq.
        self._wait_heap: List[Tuple[float, int, TaskInstance]] = []
        self._wait_seq: Dict[str, int] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None,
            max_wall_s: Optional[float] = None,
            checkpoint_every_s: Optional[float] = None,
            checkpoint_dir: Optional[str] = None,
            snapshot_at_events: Optional[int] = None,
            ) -> SimulationResult:
        """Execute the scenario to completion.

        Args:
            max_events: watchdog event budget for this run (defaults to
                ``REPRO_MAX_EVENTS`` or the module runaway cap).
            max_wall_s: watchdog wall-clock budget in seconds (no limit
                when ``None``).
            checkpoint_every_s: write a rolling on-disk checkpoint
                (``checkpoint.json`` under ``checkpoint_dir``) whenever
                this much wall-clock time has passed since the last one.
                Checkpoints land only at batch boundaries, so each one
                resumes byte-identically.
            checkpoint_dir: directory for the rolling checkpoint
                (required with ``checkpoint_every_s``; created if
                missing).
            snapshot_at_events: capture one in-memory
                :class:`~repro.sim.snapshot.EngineSnapshot` into
                :attr:`last_snapshot` at the first batch boundary with
                at least this many events processed (test hook for the
                round-trip grid and the fuzzers).

        Exceeding either budget raises a diagnostic
        :class:`~repro.errors.SimulationError` whose ``snapshot``
        attribute carries the last-event engine state — a hung run
        fails fast with enough context to reproduce it.
        """
        start = time.perf_counter()
        self._apply_budgets(max_events, max_wall_s, start)
        self._setup_checkpoints(checkpoint_every_s, checkpoint_dir,
                                snapshot_at_events, start)
        self.scheduler.attach(self.soc)
        self._dynamic_rates = self.scheduler.dynamic_rates
        self._resolve_rate_mode()
        self._process_timeline(initial=True)
        return self._finish_run(start)

    def resume_run(self, max_events: Optional[int] = None,
                   max_wall_s: Optional[float] = None,
                   checkpoint_every_s: Optional[float] = None,
                   checkpoint_dir: Optional[str] = None,
                   snapshot_at_events: Optional[int] = None,
                   ) -> SimulationResult:
        """Drive a snapshot-restored engine to completion.

        Same arguments and result as :meth:`run`, but without the
        scheduler re-attach and initial timeline processing — those
        already happened in the original run and their effects live in
        the restored state.  Only valid on an engine produced by
        :meth:`EngineSnapshot.resume`/:meth:`resume`.

        The returned result counts events and wall time from the resume
        point onward for the wall-clock keys, while every simulated
        metric (``metric_summary()``) is byte-identical to the
        uninterrupted run.
        """
        start = time.perf_counter()
        self._apply_budgets(max_events, max_wall_s, start)
        self._setup_checkpoints(checkpoint_every_s, checkpoint_dir,
                                snapshot_at_events, start)
        self._resolve_rate_mode()
        return self._finish_run(start)

    def _apply_budgets(self, max_events: Optional[int],
                       max_wall_s: Optional[float],
                       start: float) -> None:
        if max_events is not None:
            self._max_events = int(max_events)
        if max_wall_s is not None:
            self._deadline = start + float(max_wall_s)

    def _finish_run(self, start: float) -> SimulationResult:
        self._kernel_run_loop()
        # Balanced tenancy hooks: retire anything still admitted (e.g. a
        # stream whose leave time lies beyond the last completion).
        for stream_id in self.workload.unfinished_streams():
            self.scheduler.on_tenant_retire(stream_id, self.now)
        result = SimulationResult(
            scheduler_name=self.scheduler.name,
            sim_time_s=self.now,
            metrics=self.metrics,
            scheduler_stats=self.scheduler.stats(),
            wall_time_s=time.perf_counter() - start,
            events_processed=self.events_processed,
            offered_inferences=self.workload.offered_inferences,
            cancelled_inferences=self.cancelled,
            completed_inferences=self._completed,
            dropped_inferences=self.workload.dropped_inferences,
            offered_load_ratio=self._offered_load_ratio(),
            last_snapshot=self.last_snapshot,
        )
        # Cheap always-on accounting check (a handful of integer adds);
        # REPRO_CHECK_CONSERVATION=0 opts out.
        if os.environ.get("REPRO_CHECK_CONSERVATION", "1") != "0":
            result.check_conservation()
        return result

    # ------------------------------------------------------------------
    # Checkpoint / restore (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot(self):
        """Capture the engine's complete state (batch boundary only —
        i.e. from the checkpoint hook, or on an engine that is not
        mid-``run``)."""
        from .snapshot import EngineSnapshot

        return EngineSnapshot.capture(self)

    @classmethod
    def resume(cls, snapshot, use_native: Optional[bool] = None,
               kernel_backend: Optional[str] = None,
               ) -> "MultiTenantEngine":
        """Reconstruct a runnable engine from an
        :class:`~repro.sim.snapshot.EngineSnapshot`; continue it with
        :meth:`resume_run`."""
        return snapshot.resume(use_native=use_native,
                               kernel_backend=kernel_backend)

    def _setup_checkpoints(self, every_s: Optional[float],
                           directory: Optional[str],
                           at_events: Optional[int],
                           start: float) -> None:
        self._checkpoint_hook = None
        self._checkpoint_every_s = None
        self._snapshot_at_events = None
        if at_events is not None:
            self._snapshot_at_events = int(at_events)
            self.last_snapshot = None
            self._checkpoint_hook = self._maybe_checkpoint
        if every_s is not None:
            if directory is None:
                raise ValueError(
                    "checkpoint_every_s requires checkpoint_dir"
                )
            self._checkpoint_every_s = float(every_s)
            self._checkpoint_dir = directory
            self._checkpoint_next = start + self._checkpoint_every_s
            self._checkpoint_hook = self._maybe_checkpoint

    def _maybe_checkpoint(self) -> None:
        """Checkpoint hook, called at every batch boundary (top of the
        outer event loop) when checkpointing is enabled."""
        at = self._snapshot_at_events
        if at is not None and self.last_snapshot is None \
                and self.events_processed >= at:
            self.last_snapshot = self.snapshot()
        if self._checkpoint_every_s is not None \
                and time.perf_counter() >= self._checkpoint_next:
            from pathlib import Path

            self.snapshot().save(
                Path(self._checkpoint_dir) / "checkpoint.json"
            )
            self.checkpoints_written += 1
            # Schedule from after the write: serialization time doesn't
            # eat into the next interval.
            self._checkpoint_next = \
                time.perf_counter() + self._checkpoint_every_s

    def _capture_state(self) -> dict:
        """All mutable run state, as one picklable dict (the payload of
        an :class:`~repro.sim.snapshot.EngineSnapshot`).

        Shared identities are preserved by pickling everything in one
        payload: instances reachable through the kernel, the active map,
        the wait heap and the queue are the same objects; the workload's
        event recorder is the engine's; the scheduler state's SoC is the
        engine's.  Pure memos (uniform efficiencies, prepared models,
        share constants) are excluded and rebuild lazily with identical
        values.
        """
        scheduler = self.scheduler
        return {
            "soc": self.soc,
            "workload": self.workload,
            "metrics": self.metrics,
            "trace": self.trace,
            "event_recorder": self.event_recorder,
            "scheduler": {
                "name": scheduler.name,
                "state": scheduler.snapshot_state(),
            },
            "engine": {
                "now": self.now,
                "events_processed": self.events_processed,
                "cancelled": self.cancelled,
                "completed": self._completed,
                "queued": list(self._queued),
                "active": dict(self._active),
                "stream_active": dict(self._stream_active),
                "free_cores": self._free_cores,
                "core_grant": dict(self._core_grant),
                "total_bw": self._total_bw,
                "base_bw": self._base_bw,
                "bw_factors": dict(self._bw_factors),
                "cores_offline": dict(self._cores_offline),
                "offline_total": self._offline_total,
                "timeline_done": self._timeline_done,
                "faults_done": self._faults_done,
                "fault_runtime": self._fault_runtime,
                "waiting_set": dict(self._waiting_set),
                "wait_heap": list(self._wait_heap),
                "wait_seq": dict(self._wait_seq),
                "next_seq": self._next_seq,
                "rates_valid": self._rates_valid,
                "kernel": self._kernel.export_state(),
            },
        }

    def _restore_state(self, payload: dict) -> None:
        """Install a :meth:`_capture_state` payload into a freshly
        constructed engine (the scheduler must already be attached and
        restored — :meth:`EngineSnapshot.resume` owns that order)."""
        eng = payload["engine"]
        self.metrics = payload["metrics"]
        self.now = eng["now"]
        self.events_processed = eng["events_processed"]
        self.cancelled = eng["cancelled"]
        self._completed = eng["completed"]
        self._queued = list(eng["queued"])
        self._active = dict(eng["active"])
        self._stream_active = dict(eng["stream_active"])
        self._free_cores = eng["free_cores"]
        self._core_grant = dict(eng["core_grant"])
        self._total_bw = eng["total_bw"]
        self._base_bw = eng["base_bw"]
        self._bw_factors = dict(eng["bw_factors"])
        self._cores_offline = dict(eng["cores_offline"])
        self._offline_total = eng["offline_total"]
        self._timeline_done = eng["timeline_done"]
        self._faults_done = eng["faults_done"]
        self._fault_runtime = eng["fault_runtime"]
        self._waiting_set = dict(eng["waiting_set"])
        self._wait_heap = list(eng["wait_heap"])
        self._wait_seq = dict(eng["wait_seq"])
        self._next_seq = eng["next_seq"]
        # Rates restore exactly (arrays + validity flag), reproducing
        # the uninterrupted run's arithmetic without a recompute.
        self._rates_valid = eng["rates_valid"]
        self._kernel.restore_state(eng["kernel"])
        # Pure memo: rebuilt on demand with identical values.
        self._uniform_eff = {}

    def _offered_load_ratio(self) -> float:
        """Offered rate over the offer window vs completion rate over the
        whole run (see :attr:`SimulationResult.offered_load_ratio`).

        Closed-loop scenarios are self-clocked — arrivals exist only
        because completions happened — so their ratio is definitionally
        1.0.  With open-loop streams, the offer window is the scenario
        window (or, in count mode, the span over which arrivals were
        actually offered), making the ratio > 1 exactly when offered
        load outruns service capacity.
        """
        workload = self.workload
        if not workload.has_open_loop:
            return 1.0
        offered = workload.offered_inferences
        duration = workload.scenario.duration_s
        offer_window = duration if duration is not None \
            else workload.last_offer_s
        if offer_window <= 0 or self._completed <= 0 or self.now <= 0:
            return 1.0
        offered_rate = offered / offer_window
        completion_rate = self._completed / self.now
        return offered_rate / completion_rate

    # ------------------------------------------------------------------
    # Kernel event loop
    # ------------------------------------------------------------------

    def _kernel_run_loop(self) -> None:
        self._dispatch_queued()
        max_events = self._max_events
        deadline = self._deadline
        # The top of this loop is the engine's batch boundary: no batch
        # in flight, every due wakeup/timeline/fault/dispatch phase
        # drained for the current instant — the only place snapshots
        # capture (and therefore resume) exactly.
        checkpoint = self._checkpoint_hook
        while self._active or self._queued or not self._timeline_done \
                or not self._faults_done:
            if checkpoint is not None:
                checkpoint()
            if self.events_processed >= max_events:
                raise self._watchdog_error(
                    f"event cap exceeded ({max_events} events); "
                    "runaway simulation"
                )
            if deadline is not None and time.perf_counter() > deadline:
                raise self._watchdog_error("wall-clock budget exceeded")
            self._batch_run()
            # The batch returned because this event's remaining phases
            # need the slow machinery: due wakeups/timeline/fault
            # events, a queued dispatch, or a rate-mode change.
            if self._wait_heap:
                self._process_timeouts()
            if not self._faults_done:
                self._process_faults()
            if not self._timeline_done:
                self._process_timeline()
            if self._queued:
                self._dispatch_queued()

    def _watchdog_error(self, reason: str) -> SimulationError:
        """Build a diagnostic error carrying the last-event snapshot."""
        snapshot = {
            "now": self.now,
            "events_processed": self.events_processed,
            "active": len(self._active),
            "queued": len(self._queued),
            "waiting": len(self._waiting_set),
            "free_cores": self._free_cores,
            "next_wake_s": self._peek_wake_time(),
            "next_timeline_s": self.workload.next_timeline_s(),
            "next_fault_s": (
                math.inf if self._fault_runtime is None
                else self._fault_runtime.next_s()
            ),
            "active_ids": sorted(self._active)[:8],
        }
        err = SimulationError(f"watchdog: {reason}; snapshot: {snapshot}")
        err.snapshot = snapshot
        return err

    def _resolve_rate_mode(self) -> None:
        """Cache the policy's fusable rate rule for the current epoch.

        A policy advertising a fusable spec gets the fused
        recompute+step path (native when compiled, pure Python
        otherwise); anything else keeps the split
        ``_recompute_rates`` + ``kernel.step`` pair.  Supported specs
        (see :meth:`SchedulerPolicy.rate_kernel`):

        * ``("demand_prop", floor)``     -> mode 1
        * ``("slack_weighted", urgency, floor)`` -> mode 2
        * ``("slack_throttled", floor)`` -> mode 3

        The slack modes additionally switch the kernel's slack-input
        SoA tracking on (``configure_slack``), so per-instance deadline
        /est/progress inputs ride alongside the fluid arrays.
        Re-resolved whenever the policy bumps
        :attr:`~repro.schedulers.base.SchedulerPolicy.rate_epoch`.
        """
        scheduler = self.scheduler
        kernel = self._kernel
        self._rate_epoch_seen = scheduler.rate_epoch
        self._fused_mode = 0
        self._mode_floor = 0.0
        self._mode_urgency = 0.0
        if kernel._force_backend is not None:
            # A pinned kernel backend means the test wants that exact
            # step implementation: keep the split path.
            kernel.configure_slack(False)
            return
        spec = scheduler.rate_kernel()
        if spec is None:
            kernel.configure_slack(False)
            return
        kind = spec[0]
        if kind == "demand_prop":
            self._fused_mode = 1
            self._mode_floor = float(spec[1])
            kernel.configure_slack(False)
        elif kind == "slack_weighted":
            self._fused_mode = 2
            self._mode_urgency = float(spec[1])
            self._mode_floor = float(spec[2])
            kernel.configure_slack(True, scheduler.est_isolated_latency_s)
        elif kind == "slack_throttled":
            self._fused_mode = 3
            self._mode_floor = float(spec[1])
            kernel.configure_slack(True, scheduler.est_isolated_latency_s)
        else:
            kernel.configure_slack(False)

    def _batch_run(self) -> None:
        """Process a run of events without leaving this frame.

        One iteration performs exactly the per-event sequence of the
        classic loop — rates, boundary clamp, step, completions — and
        returns as soon as any post-event phase (timeout, timeline,
        dispatch, epoch change) must run, leaving that work to the
        caller.  When the policy declares a fusable rate rule, the
        rates-recompute and the kernel step collapse into one fused call
        per event (native C when available); otherwise the split Python
        pair runs inside the same loop.  All paths are bit-identical.
        """
        kernel = self._kernel
        insts = kernel.insts
        workload = self.workload
        scheduler = self.scheduler
        if scheduler.rate_epoch != self._rate_epoch_seen:
            # A dispatch/tenant hook outside the batch changed the rate
            # rule (e.g. MoCA's first finite-deadline task arrived).
            self._resolve_rate_mode()
        step = kernel.step
        native_step = self._native
        fused_py = kernel.fused_step_demand
        fused_slack_py = kernel.fused_step_slack
        uniform_eff = self._uniform_eff
        freq = self._freq
        total_bw = self._total_bw
        dynamic = self._dynamic_rates
        wait_heap = self._wait_heap
        epoch = self._rate_epoch_seen
        fused_mode = self._fused_mode
        floor = self._mode_floor
        urgency = self._mode_urgency
        max_events = self._max_events
        # The next fault instant is constant inside a batch: actions are
        # only consumed by _process_faults, which runs between batches.
        fault_next = math.inf
        if not self._faults_done:
            fault_next = self._fault_runtime.next_s()
        n_eff = -1
        eff = 0.0
        while True:
            wait_dt = math.inf
            if wait_heap:
                wake = self._peek_wake_time()
                if not math.isinf(wake):
                    wait_dt = wake - self.now
                    if wait_dt < 0.0:
                        wait_dt = 0.0
            if not self._timeline_done:
                timeline_s = workload.next_timeline_s()
                if math.isinf(timeline_s):
                    self._timeline_done = True
                    if not self._active and not self._queued:
                        return
                elif timeline_s - self.now < wait_dt:
                    wait_dt = timeline_s - self.now
                    if wait_dt < 0.0:
                        wait_dt = 0.0
            if fault_next - self.now < wait_dt:
                wait_dt = fault_next - self.now
                if wait_dt < 0.0:
                    wait_dt = 0.0
            res = None
            if fused_mode:
                n = len(insts)
                if n != n_eff:
                    try:
                        eff = uniform_eff[n]
                    except KeyError:
                        eff = scheduler.uniform_dram_efficiency(n)
                        uniform_eff[n] = eff
                    if eff is None:
                        # Per-instance efficiencies: not fusable after
                        # all; drop to the split path for this run.
                        self._fused_mode = fused_mode = 0
                    n_eff = n
                if fused_mode and n:
                    if kernel._use_np:
                        kernel._materialize()
                    if fused_mode == 1:
                        if native_step is not None:
                            res = native_step(
                                kernel.rem_c, kernel.rem_d,
                                kernel.rate_c, kernel.rate_d,
                                wait_dt, 1, freq, total_bw, eff, floor,
                            )
                        else:
                            res = fused_py(wait_dt, freq, total_bw, eff,
                                           floor)
                    elif native_step is not None:
                        res = native_step(
                            kernel.rem_c, kernel.rem_d,
                            kernel.rate_c, kernel.rate_d,
                            wait_dt, fused_mode, freq, total_bw, eff,
                            floor, kernel.sl_arrival, kernel.sl_qos,
                            kernel.sl_est, kernel.sl_progress,
                            self.now, urgency,
                        )
                    else:
                        res = fused_slack_py(
                            wait_dt, freq, total_bw, eff, floor,
                            urgency, self.now, fused_mode == 3,
                        )
            elif native_step is not None and self._rates_valid \
                    and not kernel._use_np:
                res = native_step(
                    kernel.rem_c, kernel.rem_d,
                    kernel.rate_c, kernel.rate_d,
                    wait_dt, 0, freq, total_bw, 1.0, 0.0,
                )
            if res is None:
                # Split path: the exact pre-batch per-event machinery
                # (also the fallback for inputs outside the fused
                # fast-path shape).
                if not self._rates_valid:
                    self._recompute_rates()
                dt, finished = step(wait_dt)
            else:
                dt, finished = res
            if math.isinf(dt):
                raise SimulationError(
                    "deadlock: active instances but no future event"
                )
            if dt < 0:
                raise SimulationError(f"negative time step {dt}")
            self.now += dt
            if dynamic and insts:
                self._rates_valid = False
            self.events_processed += 1
            if finished:
                self._process_completions(finished)
                if scheduler.rate_epoch != epoch:
                    self._resolve_rate_mode()
                    return
                if self._queued:
                    return
            if wait_heap and \
                    self._peek_wake_time() - self.now <= _WAKE_EPS:
                return
            if not self._timeline_done and \
                    workload.next_timeline_s() - self.now <= _WAKE_EPS:
                return
            if fault_next - self.now <= _WAKE_EPS:
                return
            if not self._active:
                return
            if self.events_processed >= max_events:
                return

    def _recompute_rates(self) -> None:
        """Install per-position rates from the policy's shares.

        The DRAM rate is clamped to >= 1e-6 bytes/s here — once, at the
        single place rates are produced — so the min-dt search and the
        fluid advance always use the same (finite-progress) rate.
        """
        kernel = self._kernel
        insts = kernel.insts
        n = len(insts)
        if not n:
            kernel.set_rates([], [])
            self._rates_valid = True
            return
        scheduler = self.scheduler
        rem_c, rem_d = kernel.rem_views()
        shares = self._shares_fn(insts, rem_c, rem_d, self.now)
        if shares is None:
            # Dict-path fallback: sync fluid state so the policy sees
            # current remaining work, then look shares up by id.
            kernel.sync_all()
            running = {inst.instance_id: inst for inst in insts}
            share_map = scheduler.bandwidth_shares(running, self.now)
            shares = [share_map.get(inst.instance_id, 0.0)
                      for inst in insts]
        total_bw = self._total_bw
        rate_c = [self._freq] * n
        if not self._positive_shares and min(shares) <= 0:
            for i in range(n):
                if shares[i] <= 0 and rem_d[i] > 0:
                    raise SimulationError(
                        f"{insts[i].instance_id} has pending DRAM work "
                        f"but zero bandwidth"
                    )
        try:
            efficiency = self._uniform_eff[n]
        except KeyError:
            efficiency = scheduler.uniform_dram_efficiency(n)
            self._uniform_eff[n] = efficiency
        if efficiency is not None:
            rate_d = [
                r if (r := total_bw * s * efficiency) > 1e-6 else 1e-6
                for s in shares
            ]
        else:
            rate_d = [0.0] * n
            for i in range(n):
                rate = total_bw * shares[i] * \
                    scheduler.dram_efficiency(insts[i], n)
                rate_d[i] = rate if rate > 1e-6 else 1e-6
        kernel.set_rates(rate_c, rate_d)
        self._rates_valid = True

    # ------------------------------------------------------------------
    # Explicit rate-invalidation notifications
    # ------------------------------------------------------------------

    def _notify_membership_change(self) -> None:
        """The RUNNING set gained or lost a member: shares always change
        (equal splits, demand pools and DRAM efficiency all depend on
        membership)."""
        self._rates_valid = False

    def _notify_work_change(self, inst: TaskInstance) -> None:
        """A running instance started a new layer.  Only policies whose
        shares track task progress care; membership-only policies keep
        their cached rates."""
        if self.scheduler.dynamic_rates:
            self._rates_valid = False

    # ------------------------------------------------------------------
    # Wait heap (lazy invalidation)
    # ------------------------------------------------------------------

    def _push_waiter(self, inst: TaskInstance) -> None:
        seq = self._next_seq
        self._next_seq += 1
        self._wait_seq[inst.instance_id] = seq
        heappush(self._wait_heap, (inst.wake_time, seq, inst))

    def _peek_wake_time(self) -> float:
        """Earliest live wakeup (inf when none); pops stale entries."""
        heap = self._wait_heap
        while heap:
            wake, seq, inst = heap[0]
            if self._wait_seq.get(inst.instance_id) == seq:
                return wake
            heappop(heap)
        return math.inf

    # ------------------------------------------------------------------
    # Scenario timeline (admissions, open-loop arrivals, departures)
    # ------------------------------------------------------------------

    def _process_timeline(self, initial: bool = False) -> None:
        """Admit tenants, deliver scheduled arrivals and retire departing
        tenants whose timeline events are due."""
        workload = self.workload
        if not initial and \
                workload.next_timeline_s() - self.now > _WAKE_EPS:
            return
        batch = workload.pop_due(self.now)
        scheduler = self.scheduler
        for stream_id in batch.admits:
            scheduler.on_tenant_admit(
                stream_id, workload.graph_of(stream_id), self.now
            )
        if batch.instances:
            self._enqueue(batch.instances)
        for stream_id in batch.leaves:
            self._retire_stream(stream_id)
        self._flush_retired()

    def _enqueue(self, instances: List[TaskInstance]) -> None:
        for inst in instances:
            self._stream_active[inst.stream_id] = inst.instance_id
            self._queued.append(inst)

    def _retire_stream(self, stream_id: str) -> None:
        """Preemptive departure: abort the in-flight inference (if any),
        release its cores and cache state, then fire the tenant hook."""
        iid = self._stream_active.pop(stream_id, None)
        if iid is not None:
            inst = self._active.get(iid)
            if inst is not None:
                self._cancel_instance(inst)
            else:
                # Still queued for a core: withdraw it (the scheduler
                # never saw it, so no task-end hook) but count the
                # cancellation — it was offered and will never complete,
                # keeping offered == completed + cancelled + dropped.
                before = len(self._queued)
                self._queued = [
                    q for q in self._queued if q.instance_id != iid
                ]
                withdrawn = before - len(self._queued)
                self.cancelled += withdrawn
                if withdrawn and self.event_recorder is not None:
                    self.event_recorder.record(
                        "cancel", self.now, stream_id, iid
                    )
        self.scheduler.on_tenant_retire(stream_id, self.now)

    def _cancel_instance(self, inst: TaskInstance) -> None:
        """Abort an admitted instance mid-inference.

        The scheduler's task-end hook runs so per-task state (cache
        pages, regions, demand bookkeeping) is released exactly as on a
        normal completion; the instance is not recorded in metrics.
        """
        iid = inst.instance_id
        inst.state = InstanceState.CANCELLED
        inst.finish_time = self.now
        self.scheduler.on_task_end(inst, self.now)
        self._free_cores += self._core_grant.pop(iid)
        del self._active[iid]
        if iid in self._kernel.pos:
            self._kernel.remove(inst)
        self._waiting_set.pop(iid, None)
        self._wait_seq.pop(iid, None)
        self.cancelled += 1
        if self.event_recorder is not None:
            self.event_recorder.record(
                "cancel", self.now, inst.stream_id, iid
            )
        self._notify_membership_change()
        if self._waiting_set:
            self._poll_waiting()

    def _flush_retired(self) -> None:
        """Fire tenant-retire hooks for naturally-finished streams."""
        for stream_id in self.workload.take_retired():
            self._stream_active.pop(stream_id, None)
            self.scheduler.on_tenant_retire(stream_id, self.now)

    # ------------------------------------------------------------------
    # Fault injection (see repro.sim.faults)
    # ------------------------------------------------------------------

    def _process_faults(self) -> None:
        """Apply every fault onset/expiry due at the current instant."""
        runtime = self._fault_runtime
        if runtime.next_s() - self.now > _WAKE_EPS:
            return
        applied = False
        for seq, phase, event in runtime.pop_due(self.now):
            self._apply_fault(seq, phase, event)
            applied = True
        if runtime.exhausted:
            self._faults_done = True
        if applied:
            # Any fault can reshape rates (bandwidth, membership, cache
            # geometry): force the batch to re-resolve the rate rule and
            # re-cache its constants (total_bw in particular).
            self.scheduler.bump_rate_epoch()
            self._rates_valid = False

    def _apply_fault(self, seq: int, phase: int,
                     event: FaultEvent) -> None:
        onset = phase == ONSET
        if self.event_recorder is not None:
            self.event_recorder.record(
                "fault", self.now, f"{event.kind}@{seq}",
                "onset" if onset else "expiry",
            )
        kind = event.kind
        if kind == DRAM_DEGRADE:
            if onset:
                self._bw_factors[seq] = event.bw_factor
            else:
                self._bw_factors.pop(seq, None)
            # Overlapping windows compose multiplicatively; reduce in
            # seq order so the product is deterministic.
            factor = 1.0
            for s in sorted(self._bw_factors):
                factor *= self._bw_factors[s]
            self._total_bw = self._base_bw * factor
        elif kind == CORE_OFFLINE:
            if onset:
                applied = min(
                    event.cores,
                    self.soc.num_npu_cores - self._offline_total,
                )
                self._cores_offline[seq] = applied
                self._offline_total += applied
                self._free_cores -= applied
                while self._free_cores < 0 and self._active:
                    self._preempt_last_dispatched()
            else:
                applied = self._cores_offline.pop(seq, 0)
                self._offline_total -= applied
                self._free_cores += applied
            self.scheduler.on_capacity_change(
                self.soc.num_npu_cores - self._offline_total, self.now
            )
        elif kind == PAGE_RETIRE:
            # Permanent: the schedule seed and event seq salt the RNG so
            # the same pages retire on every engine path and backend.
            rng_key = (
                f"page-retire:{self._fault_runtime.spec.seed}:{seq}"
            )
            self.scheduler.on_pages_retired(event.pages, rng_key,
                                            self.now)
        else:  # TENANT_STALL
            workload = self.workload
            if onset:
                for stream_id in self._stall_targets(event):
                    workload.stall_stream(stream_id)
            else:
                for stream_id in self._stall_targets(event):
                    self._enqueue(
                        workload.resume_stream(stream_id, self.now)
                    )
                self._flush_retired()

    def _stall_targets(self, event: FaultEvent) -> List[str]:
        streams = self.workload.streams
        if event.stream_index is None:
            return list(streams)
        return [streams[event.stream_index % len(streams)]]

    def _preempt_last_dispatched(self) -> None:
        """Core-offline preemption: abort the most recently dispatched
        instance — its pages and region release through ``on_task_end``
        exactly like a preemptive departure — then re-offer the
        stream's next inference, which queues until capacity returns."""
        inst = next(reversed(self._active.values()))
        stream_id = inst.stream_id
        self._cancel_instance(inst)
        self._stream_active.pop(stream_id, None)
        next_inst = self.workload.next_instance(stream_id, self.now)
        if next_inst is not None:
            self._stream_active[stream_id] = next_inst.instance_id
            self._queued.append(next_inst)
        else:
            self._flush_retired()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _process_completions(self, finished_pos: List[int]) -> None:
        kernel = self._kernel
        scheduler = self.scheduler
        trace = self.trace
        now = self.now
        # Sync fluid state while positions are valid, then snapshot by
        # reference: handling a completion can reshape the kernel (task
        # finish, page wait), invalidating positions.
        finished = kernel.take_finished(finished_pos)
        advance = self._advance_layer
        for inst in finished:
            if trace is not None:
                trace.end(inst.instance_id, now,
                          dram_bytes=inst.work.dram_bytes)
            # Inlined TaskInstance.account_layer (hot path; a completed
            # layer always has work installed).
            work = inst.work
            inst.dram_bytes_total += work.dram_bytes
            inst.hit_bytes_total += work.hit_bytes
            inst.access_bytes_total += work.access_bytes
            inst.layers_executed += 1
            if advance is not None and \
                    inst.layer_index + 1 < len(inst.graph.layers):
                # Fused end-of-layer + next-layer selection: one
                # scheduler call per completion (identical semantics to
                # on_layer_end -> layer_index += 1 -> begin_layer).
                work, timeout = advance(inst, now)
                self._apply_grant(inst, work, timeout)
                continue
            scheduler.on_layer_end(inst, now)
            inst.layer_index += 1
            if inst.layer_index >= len(inst.graph.layers):
                self._finish_instance(inst)
            else:
                work, timeout = scheduler.begin_layer(inst, now)
                self._apply_grant(inst, work, timeout)
        if self._waiting_set:
            self._poll_waiting()

    def _finish_instance(self, inst: TaskInstance) -> None:
        inst.state = InstanceState.DONE
        inst.finish_time = self.now
        self.scheduler.on_task_end(inst, self.now)
        self._free_cores += self._core_grant.pop(inst.instance_id)
        del self._active[inst.instance_id]
        if inst.instance_id in self._kernel.pos:
            self._kernel.remove(inst)
        self._waiting_set.pop(inst.instance_id, None)
        self._wait_seq.pop(inst.instance_id, None)
        self._notify_membership_change()
        self._completed += 1
        if self.event_recorder is not None:
            self.event_recorder.record(
                "completion", self.now, inst.stream_id,
                inst.instance_id,
            )
        if not self.workload.is_warmup(inst):
            self.metrics.record(inst)
        stream_id = inst.stream_id
        next_inst = self.workload.next_instance(stream_id, self.now)
        if next_inst is not None:
            self._stream_active[stream_id] = next_inst.instance_id
            self._queued.append(next_inst)
        else:
            self._stream_active.pop(stream_id, None)
            self._flush_retired()

    def _begin_layer(self, inst: TaskInstance) -> None:
        work, timeout = self.scheduler.begin_layer(inst, self.now)
        self._apply_grant(inst, work, timeout)

    def _apply_grant(self, inst: TaskInstance, work, timeout: float
                     ) -> None:
        kernel = self._kernel
        iid = inst.instance_id
        if work is None:
            inst.state = InstanceState.WAITING_PAGES
            if math.isinf(timeout):
                raise SimulationError(
                    f"{iid}: ungranted wait with no timeout"
                )
            inst.wake_time = self.now + max(timeout, 0.0)
            if iid in kernel.pos:
                kernel.remove(inst)
                self._notify_membership_change()
            self._waiting_set[iid] = inst
            self._push_waiter(inst)
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(iid, SpanKind.WAIT_PAGES,
                                 inst.layer_index, self.now)
        else:
            # Inlined TaskInstance.begin_work (hot path).
            inst.work = work
            inst.rem_compute_cycles = work.compute_cycles
            inst.rem_dram_bytes = work.dram_bytes
            inst.state = InstanceState.RUNNING
            inst.wake_time = math.inf
            if self._waiting_set and \
                    self._waiting_set.pop(iid, None) is not None:
                self._wait_seq.pop(iid, None)
            pos = kernel.pos.get(iid)
            if pos is not None:
                kernel.set_work(inst, pos)
                # Work-change notification, inlined: only share policies
                # that track task progress care (see
                # _notify_work_change).
                if self._dynamic_rates:
                    self._rates_valid = False
            else:
                kernel.add(inst)
                self._notify_membership_change()
            if inst.start_time is None:
                inst.start_time = self.now
            if self.trace is not None:
                from .trace import SpanKind

                self.trace.begin(iid, SpanKind.LAYER,
                                 inst.layer_index, self.now)

    def _poll_waiting(self) -> None:
        for inst in list(self._waiting_set.values()):
            work, timeout = self.scheduler.poll_layer(inst, self.now)
            if work is not None:
                self._apply_grant(inst, work, timeout)
            # An unsuccessful poll must NOT reset the wake timer, or a
            # frequently-polled task would never reach its timeout and
            # would wait for pages indefinitely instead of downgrading.

    def _process_timeouts(self) -> None:
        if self._peek_wake_time() - self.now > _WAKE_EPS:
            return
        now = self.now
        due = [inst for inst in self._waiting_set.values()
               if inst.wake_time - now <= _WAKE_EPS]
        for inst in due:
            work, timeout = self.scheduler.timeout_layer(inst, self.now)
            self._apply_grant(inst, work, timeout)

    def _dispatch_queued(self) -> None:
        still_queued: List[TaskInstance] = []
        for inst in self._queued:
            cores = self.scheduler.cores_for(inst, self._free_cores)
            if 0 < cores <= self._free_cores:
                self._free_cores -= cores
                inst.cores = cores
                self._core_grant[inst.instance_id] = cores
                self._active[inst.instance_id] = inst
                if self.event_recorder is not None:
                    self.event_recorder.record(
                        "dispatch", self.now, inst.stream_id,
                        inst.instance_id,
                    )
                self.scheduler.on_task_start(inst, self.now)
                self._begin_layer(inst)
            else:
                still_queued.append(inst)
        self._queued = still_queued
