"""Versioned, content-hashed engine checkpoints with exact resume.

An :class:`EngineSnapshot` captures the *complete* mid-run state of a
:class:`~repro.sim.engine.MultiTenantEngine` at a batch boundary — the
SoA kernel arrays and wakeup heap, the scenario timeline heap with
per-stream backlogs, stall state and arrival-RNG draw positions, the
fault-schedule cursor and active throttle/outage windows, the metrics
accumulators, and the policy's own state through the
``SchedulerPolicy.snapshot_state()`` / ``restore_state()`` hooks (for
CaMDN: the allocator SoA arrays, regions, CPT and page reverse maps).

Resume is **byte-identical**: running a snapshot to completion produces
the same ``metric_summary()`` as the uninterrupted run, for every
builtin scenario, all five policies, and any fault schedule — the
property the crash-resume test grid and the fuzzers' snapshot-at-random-
boundary properties pin.

Design notes:

* **One pickle payload.**  All mutable state serializes in a single
  pickle, so every shared identity survives the round trip: a
  ``TaskInstance`` appears once whether reached through the kernel, the
  active map, the wait heap or the queue; the CaMDN scheduler contexts
  pinned on ``inst.sched_ctx`` are the same tuples as the system's
  ``_ctx`` values.
* **Model graphs are interned, not serialized.**  A
  ``persistent_id`` hook replaces zoo-built
  :class:`~repro.models.graph.ModelGraph` objects with their benchmark
  key; loading re-resolves them through the process-wide
  ``build_model`` cache, keeping identity-guarded memos (prepared
  models, mapping files) hot after resume.  Graphs built outside the
  zoo simply serialize by value — pure memos then rebuild with
  identical values.
* **The envelope is versioned and content-hashed.**  The JSON wrapper
  carries ``SNAPSHOT_SCHEMA_VERSION`` and the SHA-256 of the payload;
  loading rejects unknown versions and corrupt payloads with
  :class:`~repro.errors.SnapshotError` before any unpickling happens.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from ..errors import SnapshotError
from ..models.graph import ModelGraph
from ..models.zoo import BENCHMARK_MODELS, build_model

if TYPE_CHECKING:
    from .engine import MultiTenantEngine

#: Snapshot format version; bump on any payload/envelope shape change.
SNAPSHOT_SCHEMA_VERSION = 1

#: Fixed pickle protocol so snapshots are portable across the Python
#: versions the CI matrix covers (protocol 4 is universal on 3.8+).
_PICKLE_PROTOCOL = 4


def _interned_graphs() -> Dict[int, str]:
    """id -> zoo key for every benchmark graph interned by
    ``build_model`` (computed per capture: the lru cache may have been
    cleared between runs, and probing it is eight cached calls)."""
    mapping: Dict[int, str] = {}
    for abbr in BENCHMARK_MODELS:
        try:
            mapping[id(build_model(abbr))] = abbr
        except Exception:  # pragma: no cover - zoo builders never fail
            continue
    return mapping


class _SnapshotPickler(pickle.Pickler):
    """Pickler interning zoo model graphs by benchmark key."""

    def __init__(self, file) -> None:
        super().__init__(file, protocol=_PICKLE_PROTOCOL)
        self._interned = _interned_graphs()

    def persistent_id(self, obj):  # noqa: D102 - pickle hook
        if isinstance(obj, ModelGraph):
            key = self._interned.get(id(obj))
            if key is not None:
                return ("model", key)
        return None


class _SnapshotUnpickler(pickle.Unpickler):
    """Unpickler resolving interned graphs through ``build_model``."""

    def persistent_load(self, pid):  # noqa: D102 - pickle hook
        try:
            kind, key = pid
        except (TypeError, ValueError):
            raise SnapshotError(
                f"malformed persistent id in snapshot payload: {pid!r}"
            ) from None
        if kind != "model":
            raise SnapshotError(
                f"unknown persistent id kind in snapshot payload: "
                f"{kind!r}"
            )
        return build_model(key)


def _dumps(obj) -> bytes:
    buf = io.BytesIO()
    _SnapshotPickler(buf).dump(obj)
    return buf.getvalue()


def _loads(payload: bytes):
    return _SnapshotUnpickler(io.BytesIO(payload)).load()


@dataclass
class EngineSnapshot:
    """A frozen engine state: policy name + one pickled payload.

    Build one with :meth:`capture` (or
    :meth:`MultiTenantEngine.snapshot`), persist it with :meth:`save` /
    :meth:`to_json`, and reconstruct a runnable engine with
    :meth:`resume` — then drive it to completion with
    :meth:`~repro.sim.engine.MultiTenantEngine.resume_run`.
    """

    policy: str
    payload: bytes
    #: Simulated time at capture (informational; the payload is
    #: authoritative).
    sim_time_s: float = 0.0
    #: Events processed at capture (informational).
    events_processed: int = 0

    @classmethod
    def capture(cls, engine: "MultiTenantEngine") -> "EngineSnapshot":
        """Snapshot a live engine (batch-boundary contract: the engine
        must be between batches — inside ``run()`` that is the top of
        the outer event loop, where checkpoints are taken)."""
        return cls(
            policy=engine.scheduler.name,
            payload=_dumps(engine._capture_state()),
            sim_time_s=engine.now,
            events_processed=engine.events_processed,
        )

    # ------------------------------------------------------------------
    # Envelope (JSON, versioned, content-hashed)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to the versioned, content-hashed JSON envelope."""
        return json.dumps({
            "snapshot_schema_version": SNAPSHOT_SCHEMA_VERSION,
            "policy": self.policy,
            "sim_time_s": self.sim_time_s,
            "events_processed": self.events_processed,
            "payload_sha256": hashlib.sha256(self.payload).hexdigest(),
            "payload": base64.b64encode(self.payload).decode("ascii"),
        })

    @classmethod
    def from_json(cls, text: str) -> "EngineSnapshot":
        """Parse an envelope, validating version and payload hash.

        Raises:
            SnapshotError: not a snapshot, unknown schema version, or
                the payload hash does not match (corruption).
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot is not valid JSON: {exc}") \
                from exc
        if not isinstance(data, dict):
            raise SnapshotError("snapshot envelope is not an object")
        version = data.get("snapshot_schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotError(
                f"unsupported snapshot schema {version!r} "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        try:
            payload = base64.b64decode(
                data["payload"].encode("ascii"), validate=True
            )
        except (KeyError, AttributeError, ValueError) as exc:
            raise SnapshotError(f"snapshot payload unreadable: {exc}") \
                from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != data.get("payload_sha256"):
            raise SnapshotError(
                "snapshot payload hash mismatch (corrupt or truncated "
                f"payload): {digest} != {data.get('payload_sha256')!r}"
            )
        return cls(
            policy=data.get("policy", ""),
            payload=payload,
            sim_time_s=data.get("sim_time_s", 0.0),
            events_processed=data.get("events_processed", 0),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the envelope atomically and durably (tmp + fsync +
        rename): a crash mid-write leaves the previous checkpoint (or
        nothing), never a torn file."""
        from ..core.serialize import _write_text_durable

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            _write_text_durable(tmp, self.to_json())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EngineSnapshot":
        """Read an envelope file (validating schema and hash).

        Raises:
            SnapshotError: unreadable file or invalid envelope.
        """
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") \
                from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def resume(self, use_native: Optional[bool] = None,
               kernel_backend: Optional[str] = None,
               ) -> "MultiTenantEngine":
        """Reconstruct a runnable engine from this snapshot.

        The returned engine continues with
        :meth:`~repro.sim.engine.MultiTenantEngine.resume_run` (NOT
        ``run()``, which would re-attach the scheduler and wipe the
        restored state).

        ``kernel_backend`` defaults to the backend pinned at capture
        time (usually ``None`` — auto selection); ``use_native``
        defaults to auto.  Both only select among bit-identical
        implementations, so they never change results.

        Raises:
            SnapshotError: the payload does not unpickle into engine
                state.
        """
        from ..schedulers import make_scheduler
        from .engine import MultiTenantEngine

        try:
            payload = _loads(self.payload)
            soc = payload["soc"]
            sched_state = payload["scheduler"]["state"]
            eng_state = payload["engine"]
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"snapshot payload failed to deserialize: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        scheduler = make_scheduler(self.policy)
        scheduler.attach(soc)
        scheduler.restore_state(sched_state)
        if kernel_backend is None:
            kernel_backend = eng_state["kernel"]["force_backend"]
        engine = MultiTenantEngine(
            soc,
            scheduler,
            payload["workload"],
            trace=payload["trace"],
            kernel_backend=kernel_backend,
            use_native=use_native,
            event_recorder=payload["event_recorder"],
        )
        engine._restore_state(payload)
        return engine
