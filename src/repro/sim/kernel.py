"""Structure-of-arrays kernel for the engine's per-event hot path.

The fluid engine spends almost all of its event-loop time on three
operations over the RUNNING set: finding the next event time (a min over
per-instance layer-completion times), draining fluid work (two clamped
subtractions per instance), and scanning for finished layers.  Doing those
through per-instance Python method calls costs a dict iteration plus
several attribute lookups per instance per event.

:class:`RunningKernel` hoists the per-instance fluid state
(``rem_compute_cycles`` / ``rem_dram_bytes`` and the applied rates) into
flat parallel arrays ordered by running-set insertion order, so the three
hot operations become batch kernels.  Two backends produce bit-identical
results:

* a **numpy** backend (element-wise float64 ops and an exact min
  reduction) used for wide running sets, where vectorization wins;
* a **pure-Python list** backend used for narrow running sets (and
  whenever numpy is unavailable), where per-call numpy overhead would
  exceed the loop it replaces.

Bit-identity between the backends — and with the scalar reference
semantics on :class:`~repro.sim.task.TaskInstance` — holds because every
operation is element-wise IEEE-754 double arithmetic in the same
expression shape, and the only reduction is a ``min``, which is exact in
any order.  Order-sensitive reductions (the bandwidth-share
normalizations) stay in policy code and always see values in insertion
order.

Insertion order is load-bearing: completion processing and bandwidth-share
normalization must observe instances in insertion order (the frozen
reference summaries were captured under that order), so positions are
compacted (never reused out of order) on every membership change.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import SimulationError

try:  # numpy is optional; the list backend is always available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_backend tests
    _np = None

if TYPE_CHECKING:
    from .task import TaskInstance

#: Running-set width at which the numpy backend starts to win over the
#: tight list loops (numpy's per-call overhead dominates below this).
NUMPY_MIN_WIDTH = 24

#: Completion threshold shared with :meth:`TaskInstance.layer_finished`.
_FINISH_EPS = 1e-9


class RunningKernel:
    """Flat fluid-state arrays for the engine's running set."""

    __slots__ = (
        "insts", "pos", "rem_c", "rem_d", "rate_c", "rate_d",
        "_force_backend", "_np_always", "_np_enabled", "_use_np",
        "_arr_c", "_arr_d", "_arr_rc", "_arr_rd",
        "sl_arrival", "sl_qos", "sl_est", "sl_progress",
        "_slack_on", "_est_fn",
    )

    def __init__(self, force_backend: Optional[str] = None) -> None:
        if force_backend not in (None, "numpy", "list"):
            raise ValueError(f"unknown kernel backend {force_backend!r}")
        if force_backend == "numpy" and _np is None:
            raise ValueError("numpy backend requested but numpy missing")
        #: Running instances in insertion order.
        self.insts: List["TaskInstance"] = []
        #: instance_id -> position in :attr:`insts`.
        self.pos: Dict[str, int] = {}
        # Parallel per-position state (authoritative python lists).
        self.rem_c: List[float] = []
        self.rem_d: List[float] = []
        self.rate_c: List[float] = []
        self.rate_d: List[float] = []
        self._force_backend = force_backend
        self._np_always = force_backend == "numpy"
        self._np_enabled = _np is not None and force_backend != "list"
        self._use_np = False
        self._arr_c = self._arr_d = self._arr_rc = self._arr_rd = None
        # Slack-input SoA arrays for the fused slack-weighted rate
        # kernels (see configure_slack).  Maintained alongside the fluid
        # arrays only while a slack-aware fused mode is active, so
        # demand-prop/static runs pay one boolean test per membership
        # change and nothing else.
        self.sl_arrival: List[float] = []
        self.sl_qos: List[float] = []
        self.sl_est: List[float] = []
        self.sl_progress: List[float] = []
        self._slack_on = False
        self._est_fn: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.insts)

    def add(self, inst: "TaskInstance") -> None:
        """Append a newly RUNNING instance (rates pending recompute)."""
        self._materialize()
        self.pos[inst.instance_id] = len(self.insts)
        self.insts.append(inst)
        self.rem_c.append(inst.rem_compute_cycles)
        self.rem_d.append(inst.rem_dram_bytes)
        self.rate_c.append(0.0)
        self.rate_d.append(0.0)
        if self._slack_on:
            self._slack_append(inst)

    def remove(self, inst: "TaskInstance") -> None:
        """Drop an instance, writing its fluid state back to it."""
        self._materialize()
        i = self.pos.pop(inst.instance_id)
        inst.rem_compute_cycles = self.rem_c[i]
        inst.rem_dram_bytes = self.rem_d[i]
        del self.insts[i]
        del self.rem_c[i]
        del self.rem_d[i]
        del self.rate_c[i]
        del self.rate_d[i]
        if self._slack_on:
            del self.sl_arrival[i]
            del self.sl_qos[i]
            del self.sl_est[i]
            del self.sl_progress[i]
        for j in range(i, len(self.insts)):
            self.pos[self.insts[j].instance_id] = j

    def set_work(self, inst: "TaskInstance",
                 pos: Optional[int] = None) -> None:
        """Refresh an instance's remaining work after ``begin_work``.

        ``pos`` skips the position lookup when the caller already has it.
        """
        i = self.pos[inst.instance_id] if pos is None else pos
        self.rem_c[i] = inst.rem_compute_cycles
        self.rem_d[i] = inst.rem_dram_bytes
        if self._slack_on:
            self.sl_progress[i] = (
                inst.layer_index / max(inst.num_layers, 1)
            )
        if self._use_np:
            self._arr_c[i] = self.rem_c[i]
            self._arr_d[i] = self.rem_d[i]

    def set_rates(self, rate_c: List[float], rate_d: List[float]) -> None:
        """Install per-position rates (aligned with :attr:`insts`)."""
        self.rate_c = rate_c
        self.rate_d = rate_d
        if self._np_always or (
            self._np_enabled and len(self.insts) >= NUMPY_MIN_WIDTH
        ):
            self._select_backend()
        else:
            self._use_np = False

    # ------------------------------------------------------------------
    # Slack-input maintenance (fused slack-weighted rate kernels)
    # ------------------------------------------------------------------

    def _slack_append(self, inst: "TaskInstance") -> None:
        self.sl_arrival.append(inst.arrival_time)
        self.sl_qos.append(inst.qos_target_s)
        self.sl_est.append(self._est_fn(inst))
        self.sl_progress.append(
            inst.layer_index / max(inst.num_layers, 1)
        )

    def configure_slack(self, enabled: bool, est_fn=None) -> None:
        """Enable/disable slack-input tracking for the fused slack modes.

        ``est_fn(inst)`` must return the estimated isolated latency used
        by :meth:`SchedulerPolicy.slack_of` — a pure function of the
        instance's graph, so the stored value never goes stale.  The
        per-instance inputs (``arrival_time``, ``qos_target_s``, est,
        and layer progress) are maintained in SoA arrays mirroring
        :attr:`insts`; progress refreshes on every :meth:`set_work`.

        Enabling when already enabled is a cheap no-op (the arrays stay
        — every element is a pure function of its instance, so they
        cannot be stale).  Enabling from scratch rebuilds from the
        current running set.
        """
        if not enabled:
            if self._slack_on:
                self._slack_on = False
                self._est_fn = None
                self.sl_arrival = []
                self.sl_qos = []
                self.sl_est = []
                self.sl_progress = []
            return
        if self._slack_on:
            self._est_fn = est_fn
            return
        self._slack_on = True
        self._est_fn = est_fn
        self.sl_arrival = []
        self.sl_qos = []
        self.sl_est = []
        self.sl_progress = []
        for inst in self.insts:
            self._slack_append(inst)

    def take_finished(self, positions: List[int]) -> List["TaskInstance"]:
        """Write the given positions' fluid state back and return their
        instances (fused :meth:`sync_positions` + snapshot; positions
        must be current, i.e. pre-mutation)."""
        insts = self.insts
        out = []
        append = out.append
        if self._use_np:
            arr_c, arr_d = self._arr_c, self._arr_d
            for i in positions:
                inst = insts[i]
                inst.rem_compute_cycles = float(arr_c[i])
                inst.rem_dram_bytes = float(arr_d[i])
                append(inst)
            return out
        rem_c, rem_d = self.rem_c, self.rem_d
        for i in positions:
            inst = insts[i]
            inst.rem_compute_cycles = rem_c[i]
            inst.rem_dram_bytes = rem_d[i]
            append(inst)
        return out

    def sync_positions(self, positions: List[int]) -> None:
        """Write the given positions' fluid state back to their
        instances (positions must be current, i.e. pre-mutation)."""
        if self._use_np:
            arr_c, arr_d = self._arr_c, self._arr_d
            for i in positions:
                inst = self.insts[i]
                inst.rem_compute_cycles = float(arr_c[i])
                inst.rem_dram_bytes = float(arr_d[i])
            return
        rem_c, rem_d = self.rem_c, self.rem_d
        for i in positions:
            inst = self.insts[i]
            inst.rem_compute_cycles = rem_c[i]
            inst.rem_dram_bytes = rem_d[i]

    def sync_all(self) -> None:
        """Write every instance's fluid state back to its attributes."""
        self._pull_np()
        for inst, c, d in zip(self.insts, self.rem_c, self.rem_d):
            inst.rem_compute_cycles = c
            inst.rem_dram_bytes = d

    def rem_views(self):
        """``(rem_c, rem_d)`` lists in insertion order (exact floats)."""
        self._pull_np()
        return self.rem_c, self.rem_d

    # ------------------------------------------------------------------
    # Hot kernels
    # ------------------------------------------------------------------

    def step(self, wait_dt: float) -> Tuple[float, List[int]]:
        """Fused event step: pick the next event time and drain to it.

        ``wait_dt`` is the (already clamped, non-negative) time to the
        earliest waiting-set wakeup, or inf when nobody waits.  Returns
        ``(dt, finished_positions)``; when ``dt`` is inf (nothing running
        and nobody waking) no state is touched and the caller reports the
        deadlock.

        The event time is identical arithmetic to
        :meth:`TaskInstance.time_to_finish_layer` — per instance
        ``max(rem_c / rate_c, rem_d / rate_d)`` (a zero remainder divides
        to exactly ``+0.0``), reduced with an exact min and clamped by
        ``wait_dt`` — fused with :meth:`advance` so each array is touched
        once per event.
        """
        if self._use_np:
            t = self._arr_c / self._arr_rc
            _np.maximum(t, self._arr_d / self._arr_rd, out=t)
            dt = float(t.min()) if t.size else float("inf")
            if wait_dt < dt:
                dt = wait_dt
            if dt == float("inf"):
                return dt, []
            if dt < 0:
                raise SimulationError(f"negative time step {dt}")
            return dt, self.advance(dt)
        dt = float("inf")
        rem_c, rem_d = self.rem_c, self.rem_d
        rate_c, rate_d = self.rate_c, self.rate_d
        # zip iteration: one tuple unpack per instance instead of four
        # list indexings (same arithmetic, same order).
        for c, rc, d, rd in zip(rem_c, rate_c, rem_d, rate_d):
            t_c = c / rc
            t_d = d / rd
            t = t_c if t_c >= t_d else t_d
            if t < dt:
                dt = t
        if wait_dt < dt:
            dt = wait_dt
        if dt == float("inf"):
            return dt, []
        if dt < 0:
            raise SimulationError(f"negative time step {dt}")
        finished: List[int] = []
        append = finished.append
        for i, (c0, rc, d0, rd) in enumerate(
            zip(rem_c, rate_c, rem_d, rate_d)
        ):
            c = c0 - dt * rc
            if c < 0.0:
                c = 0.0
            rem_c[i] = c
            d = d0 - dt * rd
            if d < 0.0:
                d = 0.0
            rem_d[i] = d
            if c <= _FINISH_EPS and d <= _FINISH_EPS:
                append(i)
        return dt, finished

    def fused_step_demand(self, wait_dt: float, freq: float,
                          total_bw: float, eff: float, floor: float):
        """Fused demand-proportional event step (pure-Python twin of the
        native ``_batchstep.fused_step`` in mode ``DEMAND_PROP``).

        Recomputes the demand-proportional DRAM rates from the remaining
        work, finds the next event time and drains the fluid work, in
        one pass structure — every expression transcribes the exact
        shape of ``CaMDNSchedulerBase.bandwidth_shares_list`` (non-QoS
        branch), ``MultiTenantEngine._recompute_rates`` and
        :meth:`step`, so the results are bit-identical to the split
        path.  The compute rate of every instance is ``freq``.

        Returns ``(dt, finished_positions_or_None)``; ``None`` (the
        whole call) means the inputs fall outside the fast-path shape
        (non-positive demand total) and the caller must run the split
        path for this event.  ``dt`` may be ``inf`` (idle/deadlock) or
        negative (corrupt state) — both are returned untouched, state
        unmodified, for the caller to report.
        """
        if self._use_np:
            self._materialize()
        rem_c, rem_d = self.rem_c, self.rem_d
        n = len(rem_c)
        demands = [
            (d if d > 1.0 else 1.0)
            / (t if (t := c / freq) > 1e-9 else 1e-9)
            for c, d in zip(rem_c, rem_d)
        ]
        total = sum(demands)
        if n and not total > 0.0:
            return None
        floor_total = floor * n if floor * n < 1 else 0.0
        base = floor if floor_total else 0.0
        remaining = 1.0 - floor_total
        dt = float("inf")
        rate_d: List[float] = []
        append_rate = rate_d.append
        for c, d, demand in zip(rem_c, rem_d, demands):
            s = base + remaining * (demand / total)
            r = total_bw * s * eff
            if not r > 1e-6:
                r = 1e-6
            append_rate(r)
            t_c = c / freq
            t_d = d / r
            t = t_c if t_c >= t_d else t_d
            if t < dt:
                dt = t
        if wait_dt < dt:
            dt = wait_dt
        if dt == float("inf") or dt < 0:
            return dt, None
        finished: Optional[List[int]] = None
        for i in range(n):
            c = rem_c[i] - dt * freq
            if c < 0.0:
                c = 0.0
            rem_c[i] = c
            d = rem_d[i] - dt * rate_d[i]
            if d < 0.0:
                d = 0.0
            rem_d[i] = d
            if c <= _FINISH_EPS and d <= _FINISH_EPS:
                if finished is None:
                    finished = [i]
                else:
                    finished.append(i)
        return dt, finished

    def fused_step_slack(self, wait_dt: float, freq: float,
                         total_bw: float, eff: float, floor: float,
                         urgency: float, now: float, throttled: bool):
        """Fused slack-aware event step (pure-Python twin of the native
        ``_batchstep.fused_step`` in modes ``SLACK_WEIGHTED`` /
        ``SLACK_THROTTLED``).

        ``throttled=False`` transcribes the slack-weighted share rule
        (``AuRORAScheduler.bandwidth_shares_list`` →
        ``SlackWeightedPolicy.allocate_list``, also the CaMDN QoS
        branch): ``weight = max(demand, 1.0) * exp(-urgency *
        clamp(slack, ±20))`` normalized as ``base + remaining * w /
        total``.

        ``throttled=True`` transcribes MoCA's finite-deadline branch
        (``MoCAScheduler.bandwidth_shares_list`` →
        ``DemandProportionalPolicy.allocate_list`` non-negative fast
        path): demands halved when ``slack > 0.5``, normalized as
        ``base + remaining * (d / total)``.

        Slack inputs come from the SoA arrays maintained under
        :meth:`configure_slack`; every expression keeps the exact
        IEEE-754 shape of ``SchedulerPolicy.slack_of`` and the policy
        list paths, so results are bit-identical to the split path.
        Return protocol matches :meth:`fused_step_demand`.
        """
        if self._use_np:
            self._materialize()
        rem_c, rem_d = self.rem_c, self.rem_d
        arrival, qos = self.sl_arrival, self.sl_qos
        est, progress = self.sl_est, self.sl_progress
        n = len(rem_c)
        isinf = math.isinf
        exp = math.exp
        weights: List[float] = []
        append_w = weights.append
        for i in range(n):
            d = rem_d[i]
            t = rem_c[i] / freq
            # max(rem_d, 1.0) / max(rem_c / freq, 1e-9)
            demand = (d if d > 1.0 else 1.0) / (t if t > 1e-9 else 1e-9)
            q = qos[i]
            if isinf(q):
                slack = 1.0
            else:
                a = arrival[i]
                expected_finish = a + (
                    est[i] * (1.0 - progress[i])
                ) + (now - a)
                slack = (a + q - expected_finish) / q
            if throttled:
                # MoCA: halve the demand of comfortably-ahead tenants.
                if slack > 0.5:
                    demand *= 0.5
                append_w(demand)
            else:
                # clamp = min(max(slack, -20.0), 20.0) — equal-value
                # branches return the same float either way.
                s = slack if slack > -20.0 else -20.0
                s = s if s < 20.0 else 20.0
                append_w(
                    (demand if demand > 1.0 else 1.0) * exp(-urgency * s)
                )
        total = sum(weights)
        if n and not total > 0.0:
            return None
        floor_total = floor * n if floor * n < 1 else 0.0
        base = floor if floor_total else 0.0
        remaining = 1.0 - floor_total
        dt = float("inf")
        rate_d: List[float] = []
        append_rate = rate_d.append
        for c, d, w in zip(rem_c, rem_d, weights):
            if throttled:
                s = base + remaining * (w / total)
            else:
                s = base + remaining * w / total
            r = total_bw * s * eff
            if not r > 1e-6:
                r = 1e-6
            append_rate(r)
            t_c = c / freq
            t_d = d / r
            t = t_c if t_c >= t_d else t_d
            if t < dt:
                dt = t
        if wait_dt < dt:
            dt = wait_dt
        if dt == float("inf") or dt < 0:
            return dt, None
        finished: Optional[List[int]] = None
        for i in range(n):
            c = rem_c[i] - dt * freq
            if c < 0.0:
                c = 0.0
            rem_c[i] = c
            d = rem_d[i] - dt * rate_d[i]
            if d < 0.0:
                d = 0.0
            rem_d[i] = d
            if c <= _FINISH_EPS and d <= _FINISH_EPS:
                if finished is None:
                    finished = [i]
                else:
                    finished.append(i)
        return dt, finished

    def advance(self, dt: float) -> List[int]:
        """Drain ``dt`` seconds of fluid work; return finished positions.

        Identical arithmetic to :meth:`TaskInstance.advance` followed by
        :meth:`TaskInstance.layer_finished`; finished positions come back
        in insertion order.
        """
        if self._use_np:
            c, d = self._arr_c, self._arr_d
            c -= dt * self._arr_rc
            _np.maximum(c, 0.0, out=c)
            d -= dt * self._arr_rd
            _np.maximum(d, 0.0, out=d)
            done = _np.nonzero((c <= _FINISH_EPS) & (d <= _FINISH_EPS))[0]
            return done.tolist()
        finished: List[int] = []
        rem_c, rem_d = self.rem_c, self.rem_d
        rate_c, rate_d = self.rate_c, self.rate_d
        for i in range(len(rem_c)):
            c = rem_c[i] - dt * rate_c[i]
            if c < 0.0:
                c = 0.0
            rem_c[i] = c
            d = rem_d[i] - dt * rate_d[i]
            if d < 0.0:
                d = 0.0
            rem_d[i] = d
            if c <= _FINISH_EPS and d <= _FINISH_EPS:
                finished.append(i)
        return finished

    # ------------------------------------------------------------------
    # Checkpoint support (see repro.sim.snapshot)
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable logical state, read-only (the live kernel is not
        touched — safe to call mid-run at a batch boundary).

        Lists are exported as the authoritative fluid state even when
        the numpy backend is active, so the payload never contains
        ndarray objects and loads in numpy-free processes.
        """
        if self._use_np:
            rem_c = self._arr_c.tolist()
            rem_d = self._arr_d.tolist()
        else:
            rem_c = list(self.rem_c)
            rem_d = list(self.rem_d)
        return {
            "insts": list(self.insts),
            "pos": dict(self.pos),
            "rem_c": rem_c,
            "rem_d": rem_d,
            "rate_c": list(self.rate_c),
            "rate_d": list(self.rate_d),
            "use_np": self._use_np,
            # Pinned backend, if any, so a resume reconstructs the same
            # step implementation (restore_state itself ignores this —
            # the receiving kernel's own pin wins).
            "force_backend": self._force_backend,
            # Slack-input SoA state for the fused slack modes; the
            # est_fn binding is not picklable and is re-installed by the
            # engine's rate-mode resolution on resume.
            "slack_on": self._slack_on,
            "sl_arrival": list(self.sl_arrival),
            "sl_qos": list(self.sl_qos),
            "sl_est": list(self.sl_est),
            "sl_progress": list(self.sl_progress),
        }

    def restore_state(self, state: dict) -> None:
        """Install :meth:`export_state` output.

        The numpy backend is re-snapshotted from the restored lists when
        the capture was using it and numpy is available here; otherwise
        the list backend runs — bit-identical either way (the module
        invariant), so a snapshot taken with numpy resumes exactly on a
        numpy-free host.
        """
        self.insts = list(state["insts"])
        self.pos = dict(state["pos"])
        self.rem_c = list(state["rem_c"])
        self.rem_d = list(state["rem_d"])
        self.rate_c = list(state["rate_c"])
        self.rate_d = list(state["rate_d"])
        self._use_np = False
        self._arr_c = self._arr_d = self._arr_rc = self._arr_rd = None
        # Pre-slack snapshots (no "slack_on" key) restore with tracking
        # off; the engine's rate-mode resolution rebuilds the arrays
        # from the running set if the policy needs them.
        self._slack_on = bool(state.get("slack_on", False))
        self._est_fn = None
        if self._slack_on:
            self.sl_arrival = list(state["sl_arrival"])
            self.sl_qos = list(state["sl_qos"])
            self.sl_est = list(state["sl_est"])
            self.sl_progress = list(state["sl_progress"])
        else:
            self.sl_arrival = []
            self.sl_qos = []
            self.sl_est = []
            self.sl_progress = []
        if state["use_np"] and self._np_enabled:
            self._use_np = True
            self._arr_c = _np.array(self.rem_c, dtype=_np.float64)
            self._arr_d = _np.array(self.rem_d, dtype=_np.float64)
            self._arr_rc = _np.array(self.rate_c, dtype=_np.float64)
            self._arr_rd = _np.array(self.rate_d, dtype=_np.float64)

    # ------------------------------------------------------------------
    # Backend management
    # ------------------------------------------------------------------

    def _select_backend(self) -> None:
        """Pick the backend for the current width (after rate install)."""
        self._pull_np()  # lists must be current before re-snapshotting
        if self._force_backend == "numpy":
            use_np = True
        elif self._force_backend == "list":
            use_np = False
        else:
            use_np = _np is not None and len(self.insts) >= NUMPY_MIN_WIDTH
        self._use_np = use_np
        if use_np:
            self._arr_c = _np.array(self.rem_c, dtype=_np.float64)
            self._arr_d = _np.array(self.rem_d, dtype=_np.float64)
            self._arr_rc = _np.array(self.rate_c, dtype=_np.float64)
            self._arr_rd = _np.array(self.rate_d, dtype=_np.float64)

    def _materialize(self) -> None:
        """Fold numpy state back into the lists before a membership edit."""
        if self._use_np:
            self.rem_c = self._arr_c.tolist()
            self.rem_d = self._arr_d.tolist()
            self._use_np = False

    def _pull_np(self) -> None:
        """Refresh the list views from numpy state without leaving it."""
        if self._use_np:
            self.rem_c = self._arr_c.tolist()
            self.rem_d = self._arr_d.tolist()
