"""Multi-tenant workload generation.

The paper's experiments "randomly dispatch each model task to one NPU as
soon as it finishes its current task", i.e. every tenant is a closed-loop
stream: the next inference of a stream is dispatched the instant the
previous one completes, keeping all NPUs busy and cache contention maximal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import WorkloadError
from ..models.graph import ModelGraph
from ..models.zoo import BENCHMARK_MODELS, build_model
from .task import TaskInstance


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one multi-tenant workload.

    Two measurement modes:

    * **count mode** (``duration_s is None``) — every stream runs
      ``warmup_inferences + inferences_per_stream`` inferences; the warmup
      ones are excluded from metrics.  Deterministic, used by unit tests.
    * **steady-state mode** (``duration_s`` set) — streams keep dispatching
      until the simulated clock passes ``duration_s``; only inferences
      arriving after ``warmup_s`` *and* finishing before ``duration_s`` are
      measured.  This keeps all tenants active across the measured window
      (a fixed per-stream quota would let short models drain early and hand
      their bandwidth to the stragglers, biasing tail latencies down).

    Attributes:
        model_keys: one entry per co-located stream (model abbreviations;
            repeats allowed — 32 tenants cycle through the 8 models).
        inferences_per_stream: measured inferences per stream (count mode).
        warmup_inferences: leading inferences excluded (count mode).
        qos_scale: deadline multiplier (QoS-H/M/L are 0.8 / 1.0 / 1.2).
        duration_s: steady-state window end (enables steady-state mode).
        warmup_s: steady-state measurement start.
    """

    model_keys: Sequence[str]
    inferences_per_stream: int = 3
    warmup_inferences: int = 1
    qos_scale: float = float("inf")
    duration_s: Optional[float] = None
    warmup_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.model_keys:
            raise WorkloadError("workload needs at least one stream")
        if self.inferences_per_stream <= 0:
            raise WorkloadError("inferences_per_stream must be positive")
        if self.warmup_inferences < 0:
            raise WorkloadError("warmup cannot be negative")
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise WorkloadError("duration must be positive")
            if not 0 <= self.warmup_s < self.duration_s:
                raise WorkloadError("warmup must precede the window end")

    @property
    def num_streams(self) -> int:
        return len(self.model_keys)

    @property
    def total_inferences(self) -> int:
        return self.num_streams * (
            self.inferences_per_stream + self.warmup_inferences
        )


def random_model_mix(num_streams: int,
                     seed: int = 2025) -> List[str]:
    """A random multiset of benchmark models for ``num_streams`` tenants.

    The first ``min(num_streams, 8)`` streams cover distinct models (so
    per-model metrics exist); extras are drawn uniformly at random.
    """
    if num_streams <= 0:
        raise WorkloadError("num_streams must be positive")
    rng = random.Random(seed)
    keys = list(BENCHMARK_MODELS[:num_streams])
    while len(keys) < num_streams:
        keys.append(rng.choice(BENCHMARK_MODELS))
    return keys


@dataclass
class ClosedLoopWorkload:
    """Closed-loop stream manager driven by the engine.

    Each stream dispatches its next inference when the previous finishes;
    the workload signals completion once every stream has run its measured
    inference quota.
    """

    spec: WorkloadSpec
    _graphs: Dict[str, ModelGraph] = field(default_factory=dict)
    _dispatched: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.streams: List[str] = [
            f"{key}@{i}" for i, key in enumerate(self.spec.model_keys)
        ]
        for stream_id, key in zip(self.streams, self.spec.model_keys):
            self._graphs[stream_id] = build_model(key)
            self._dispatched[stream_id] = 0

    def graph_of(self, stream_id: str) -> ModelGraph:
        return self._graphs[stream_id]

    def initial_instances(self) -> List[TaskInstance]:
        """First inference of every stream, dispatched at t=0."""
        return [
            self._spawn(stream_id, now=0.0) for stream_id in self.streams
        ]

    def next_instance(self, stream_id: str,
                      now: float) -> Optional[TaskInstance]:
        """Dispatch the stream's next inference, or ``None`` if the stream
        is done (quota exhausted / window closed)."""
        if self.spec.duration_s is not None:
            if now >= self.spec.duration_s:
                return None
            return self._spawn(stream_id, now)
        quota = (
            self.spec.inferences_per_stream + self.spec.warmup_inferences
        )
        if self._dispatched[stream_id] >= quota:
            return None
        return self._spawn(stream_id, now)

    def is_warmup(self, instance: TaskInstance) -> bool:
        """Instances outside the measurement window are excluded.

        Steady-state mode measures every inference *arriving* inside the
        window.  Judging by finish time instead would silently drop slow
        models whose latency exceeds the window remainder — a survivorship
        bias that makes crowded systems look faster.  Arrived inferences
        always complete (streams stop dispatching after the window and the
        engine drains), so no measured latency is truncated.
        """
        if self.spec.duration_s is not None:
            in_window = (
                self.spec.warmup_s <= instance.arrival_time
                < self.spec.duration_s
            )
            return not in_window
        serial = int(instance.instance_id.rsplit("#", 1)[1])
        return serial < self.spec.warmup_inferences

    def _spawn(self, stream_id: str, now: float) -> TaskInstance:
        graph = self._graphs[stream_id]
        serial = self._dispatched[stream_id]
        self._dispatched[stream_id] += 1
        qos_s = (
            graph.qos_target_ms * 1e-3 * self.spec.qos_scale
            if graph.qos_target_ms else float("inf")
        )
        return TaskInstance(
            instance_id=f"{stream_id}#{serial}",
            stream_id=stream_id,
            graph=graph,
            arrival_time=now,
            qos_target_s=qos_s,
        )
