"""Multi-tenant workload generation.

Two layers live here:

* :class:`WorkloadSpec` — the original closed-loop workload description,
  kept as a thin compatibility wrapper.  It lowers to a
  :class:`~repro.sim.scenario.ScenarioSpec` via :meth:`to_scenario`;
  the lowered scenario reproduces the pre-scenario engine behaviour
  byte-for-byte (pinned by the committed 20-scenario reference suite).
* :class:`ScenarioWorkload` — the runtime that drives any
  :class:`~repro.sim.scenario.ScenarioSpec` through the engine: it owns
  the time-ordered timeline of scheduled events (tenant joins, open-loop
  arrivals, tenant leaves), the per-stream FIFO backlogs that serialize
  open-loop arrivals behind an in-flight inference, and the measurement-
  window bookkeeping.

The paper's experiments "randomly dispatch each model task to one NPU as
soon as it finishes its current task" — that closed-loop shape is the
``ArrivalProcess.closed_loop()`` default; open-loop and churn scenarios
generalize it (see :mod:`repro.sim.scenario`).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Deque, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..models.graph import ModelGraph
from ..models.zoo import BENCHMARK_MODELS, build_model
from .scenario import ScenarioSpec, StreamSpec
from .task import TaskInstance
from .trace import ARRIVAL, DROP, JOIN, LEAVE, EventTraceRecorder

#: Timeline event priorities at equal timestamps: a joining tenant is
#: admitted before arrivals fire, and departures are processed last (a
#: completion at the same instant is handled by the engine first).
_JOIN, _ARRIVAL, _LEAVE = 0, 1, 2

#: Tolerance for "a timeline event is due" checks (mirrors the engine's
#: wait-heap epsilon; ``now`` accumulates float error against exact
#: event timestamps).
_DUE_EPS = 1e-12


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one closed-loop multi-tenant workload.

    Two measurement modes:

    * **count mode** (``duration_s is None``) — every stream runs
      ``warmup_inferences + inferences_per_stream`` inferences; the warmup
      ones are excluded from metrics.  Deterministic, used by unit tests.
    * **steady-state mode** (``duration_s`` set) — streams keep dispatching
      until the simulated clock passes ``duration_s``; only inferences
      arriving after ``warmup_s`` *and* finishing before ``duration_s`` are
      measured.  This keeps all tenants active across the measured window
      (a fixed per-stream quota would let short models drain early and hand
      their bandwidth to the stragglers, biasing tail latencies down).

    This class is the legacy façade over the declarative scenario model:
    :meth:`to_scenario` lowers it to one closed-loop
    :class:`~repro.sim.scenario.StreamSpec` per model key.

    Attributes:
        model_keys: one entry per co-located stream (model abbreviations;
            repeats allowed — 32 tenants cycle through the 8 models).
        inferences_per_stream: measured inferences per stream (count mode).
        warmup_inferences: leading inferences excluded (count mode).
        qos_scale: deadline multiplier (QoS-H/M/L are 0.8 / 1.0 / 1.2).
        duration_s: steady-state window end (enables steady-state mode).
        warmup_s: steady-state measurement start.
    """

    model_keys: Sequence[str]
    inferences_per_stream: int = 3
    warmup_inferences: int = 1
    qos_scale: float = float("inf")
    duration_s: Optional[float] = None
    warmup_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.model_keys:
            raise WorkloadError("workload needs at least one stream")
        if self.inferences_per_stream <= 0:
            raise WorkloadError("inferences_per_stream must be positive")
        if self.warmup_inferences < 0:
            raise WorkloadError("warmup cannot be negative")
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise WorkloadError("duration must be positive")
            if not 0 <= self.warmup_s < self.duration_s:
                raise WorkloadError("warmup must precede the window end")

    @property
    def num_streams(self) -> int:
        return len(self.model_keys)

    @property
    def total_inferences(self) -> int:
        return self.num_streams * (
            self.inferences_per_stream + self.warmup_inferences
        )

    def to_scenario(self) -> ScenarioSpec:
        """Lower to the equivalent declarative scenario.

        Steady-state mode drops the per-stream count quota (the window
        bounds dispatch), exactly like the pre-scenario engine did.
        """
        count_mode = self.duration_s is None
        return ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    qos_scale=self.qos_scale,
                    inferences=(
                        self.inferences_per_stream if count_mode else None
                    ),
                    warmup_inferences=(
                        self.warmup_inferences if count_mode else 0
                    ),
                )
                for key in self.model_keys
            ),
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
        )


def random_model_mix(num_streams: int,
                     seed: int = 2025) -> List[str]:
    """A random multiset of benchmark models for ``num_streams`` tenants.

    The first ``min(num_streams, 8)`` streams cover distinct models (so
    per-model metrics exist); extras are drawn uniformly at random.
    """
    if num_streams <= 0:
        raise WorkloadError("num_streams must be positive")
    rng = random.Random(seed)
    keys = list(BENCHMARK_MODELS[:num_streams])
    while len(keys) < num_streams:
        keys.append(rng.choice(BENCHMARK_MODELS))
    return keys


class TimelineBatch(NamedTuple):
    """Due timeline events popped by :meth:`ScenarioWorkload.pop_due`."""

    admits: List[str]
    instances: List[TaskInstance]
    leaves: List[str]


class _StreamState:
    """Mutable per-stream runtime (private to :class:`ScenarioWorkload`)."""

    __slots__ = (
        "spec", "stream_id", "index", "graph", "dispatched", "generated",
        "busy", "joined", "left", "finished", "stalled", "backlog",
        "arrivals",
    )

    def __init__(self, spec: StreamSpec, stream_id: str, index: int,
                 graph: ModelGraph) -> None:
        self.spec = spec
        self.stream_id = stream_id
        self.index = index
        self.graph = graph
        self.dispatched = 0      # instances spawned (serial counter)
        self.generated = 0       # open-loop arrivals offered
        self.busy = False        # an inference is in flight / enqueued
        self.joined = False
        self.left = False
        self.finished = False
        self.stalled = False     # tenant-stall fault: not offering
        self.backlog: Deque[float] = deque()
        self.arrivals = None     # open-loop arrival-time iterator


class ScenarioWorkload:
    """Runtime driving one :class:`ScenarioSpec` through the engine.

    The engine interacts through five methods:

    * :meth:`pop_due` — admissions, scheduled arrivals and departures due
      at (or before) the current simulated time, in timeline order.
    * :meth:`next_timeline_s` — earliest pending scheduled event (``inf``
      when the timeline is exhausted; pure closed-loop scenarios exhaust
      it at t=0, so the engine's hot loop never pays for it).
    * :meth:`next_instance` — completion-coupled dispatch: the stream's
      next closed-loop inference, or its earliest backlogged open-loop
      arrival.
    * :meth:`is_warmup` — measurement-window membership of an instance.
    * :meth:`take_retired` — streams that finished naturally since the
      last call (quota exhausted / window closed / arrivals drained), so
      the engine can fire the scheduler's tenant-retire hook.
    """

    def __init__(self, scenario: ScenarioSpec,
                 recorder: Optional[EventTraceRecorder] = None) -> None:
        self.scenario = scenario
        #: Optional event-trace capture (joins / arrivals / drops /
        #: leaves are recorded here, at exact scheduled timestamps).
        self.recorder = recorder
        self.streams: List[str] = [
            f"{s.model}@{i}" for i, s in enumerate(scenario.streams)
        ]
        self._graphs: Dict[str, ModelGraph] = {}
        self._rt: Dict[str, _StreamState] = {}
        self._by_index: List[_StreamState] = []
        self._heap: List[Tuple[float, int, int]] = []
        #: Cached earliest live timeline event time (None: recompute).
        #: The engine's batch loop peeks the timeline up to twice per
        #: event, so the heap-top validation is memoized and invalidated
        #: at every mutation (pops, new arrivals, stream finishes).
        self._timeline_next: Optional[float] = None
        self._retired: List[str] = []
        self._replay_batch: Optional[TimelineBatch] = None
        self._offered = 0
        self._dropped = 0
        self._last_offer_s = 0.0
        self.has_open_loop = any(
            s.arrival.is_open_loop for s in scenario.streams
        )
        duration = scenario.duration_s
        for i, (stream_id, spec) in enumerate(
            zip(self.streams, scenario.streams)
        ):
            graph = build_model(spec.model)
            self._graphs[stream_id] = graph
            rt = _StreamState(spec, stream_id, i, graph)
            self._rt[stream_id] = rt
            self._by_index.append(rt)
            heappush(self._heap, (spec.join_s, _JOIN, i))
            if spec.leave_s is not None:
                heappush(self._heap, (spec.leave_s, _LEAVE, i))
            if spec.arrival.is_open_loop:
                end = duration if duration is not None else math.inf
                if spec.leave_s is not None:
                    end = min(end, spec.leave_s)
                rt.arrivals = spec.arrival.arrival_times(
                    i, spec.join_s, end
                )

    # ------------------------------------------------------------------
    # Engine-facing accessors
    # ------------------------------------------------------------------

    def graph_of(self, stream_id: str) -> ModelGraph:
        return self._graphs[stream_id]

    @property
    def offered_inferences(self) -> int:
        """Arrivals offered so far (dispatched + backlogged + dropped)."""
        return self._offered

    @property
    def dropped_inferences(self) -> int:
        """Backlogged arrivals discarded by tenant departures."""
        return self._dropped

    @property
    def last_offer_s(self) -> float:
        """Time of the latest offered arrival (count-mode offer window)."""
        return self._last_offer_s

    def initial_instances(self) -> List[TaskInstance]:
        """First inferences due at t=0 (compatibility accessor).

        The popped batch is cached for replay, so an engine run started
        afterwards still receives these instances — calling this before
        ``engine.run()`` (the pre-scenario inspection pattern) must not
        silently empty the simulation.
        """
        batch = self.pop_due(0.0)
        self._replay_batch = batch
        return batch.instances

    def next_timeline_s(self) -> float:
        """Earliest live scheduled event time (``inf`` when exhausted)."""
        t = self._timeline_next
        if t is not None:
            return t
        heap = self._heap
        while heap:
            t, prio, index = heap[0]
            rt = self._by_index[index]
            if rt.finished or rt.left:
                heappop(heap)       # stale: stream already gone
                continue
            self._timeline_next = t
            return t
        self._timeline_next = math.inf
        return math.inf

    def has_pending(self) -> bool:
        """True while scheduled events remain (joins/arrivals/leaves)."""
        return not math.isinf(self.next_timeline_s())

    def pop_due(self, now: float) -> TimelineBatch:
        """Process every scheduled event with ``time <= now`` (within the
        engine's epsilon) and return the resulting batch."""
        admits: List[str] = []
        instances: List[TaskInstance] = []
        leaves: List[str] = []
        if self._replay_batch is not None:
            # A prior initial_instances() call already popped the t=0
            # events; hand its batch to this (engine) pop instead of
            # dropping it.
            cached, self._replay_batch = self._replay_batch, None
            admits.extend(cached.admits)
            instances.extend(cached.instances)
            leaves.extend(cached.leaves)
        heap = self._heap
        while heap and heap[0][0] - now <= _DUE_EPS:
            t, prio, index = heappop(heap)
            rt = self._by_index[index]
            if rt.finished or rt.left:
                continue
            if prio == _JOIN:
                rt.joined = True
                admits.append(rt.stream_id)
                if self.recorder is not None:
                    self.recorder.record(JOIN, t, rt.stream_id)
                if rt.spec.arrival.is_open_loop:
                    # Prime the first arrival; the while condition picks
                    # it up in this same batch if it is already due.
                    self._push_next_arrival(rt)
                else:
                    instances.append(self._spawn(rt, t))
            elif prio == _ARRIVAL:
                if rt.stalled:
                    # Stalled source: the arrival is never offered (it
                    # does not count toward offered/quota and is not
                    # backlogged) but the chain stays primed so the
                    # stream resumes offering when the stall expires.
                    self._push_next_arrival(rt)
                    continue
                self._offered += 1
                rt.generated += 1
                if self.recorder is not None:
                    self.recorder.record(ARRIVAL, t, rt.stream_id)
                if t > self._last_offer_s:
                    self._last_offer_s = t
                if rt.busy:
                    rt.backlog.append(t)
                else:
                    instances.append(self._spawn(rt, t, arrival_time=t))
                self._push_next_arrival(rt)
            else:  # _LEAVE
                rt.left = True
                rt.finished = True
                self._dropped += len(rt.backlog)
                if self.recorder is not None:
                    for _ in rt.backlog:
                        self.recorder.record(DROP, t, rt.stream_id)
                    self.recorder.record(LEAVE, t, rt.stream_id)
                rt.backlog.clear()
                leaves.append(rt.stream_id)
        self._timeline_next = None
        return TimelineBatch(admits, instances, leaves)

    def next_instance(self, stream_id: str,
                      now: float) -> Optional[TaskInstance]:
        """Completion-coupled dispatch for ``stream_id``.

        Closed-loop streams dispatch their next inference (quota and
        window permitting); open-loop streams drain their arrival
        backlog.  Returns ``None`` when the stream has nothing to run —
        if it can never run again, it is queued for tenant retirement
        (see :meth:`take_retired`).
        """
        rt = self._rt[stream_id]
        spec = rt.spec
        if rt.left:
            rt.busy = False
            return None
        if spec.arrival.is_open_loop:
            if rt.backlog:
                t = rt.backlog.popleft()
                return self._spawn(rt, now, arrival_time=t)
            rt.busy = False
            if self._open_loop_drained(rt):
                self._finish(rt)
            return None
        if rt.stalled:
            # Stalled closed-loop source: the completion does not couple
            # to a new dispatch.  The stream stays joined and idle;
            # resume_stream re-offers when the stall expires.
            rt.busy = False
            return None
        if spec.leave_s is not None and now >= spec.leave_s:
            rt.busy = False
            self._finish(rt)
            return None
        duration = self.scenario.duration_s
        if duration is not None:
            if now >= duration:
                rt.busy = False
                self._finish(rt)
                return None
            return self._spawn(rt, now)
        if rt.dispatched >= spec.quota:
            rt.busy = False
            self._finish(rt)
            return None
        return self._spawn(rt, now)

    def is_warmup(self, instance: TaskInstance) -> bool:
        """Instances outside the measurement window are excluded.

        Steady-state mode measures every inference *arriving* inside the
        window.  Judging by finish time instead would silently drop slow
        models whose latency exceeds the window remainder — a survivorship
        bias that makes crowded systems look faster.  Arrived inferences
        always complete (streams stop dispatching after the window and the
        engine drains), so no measured latency is truncated.
        """
        if self.scenario.duration_s is not None:
            in_window = (
                self.scenario.warmup_s <= instance.arrival_time
                < self.scenario.duration_s
            )
            return not in_window
        serial = int(instance.instance_id.rsplit("#", 1)[1])
        rt = self._rt[instance.stream_id]
        return serial < rt.spec.warmup_inferences

    def take_retired(self) -> List[str]:
        """Streams that finished naturally since the last call."""
        if not self._retired:
            return []
        retired = self._retired
        self._retired = []
        return retired

    def unfinished_streams(self) -> List[str]:
        """Joined streams not yet finished (end-of-run retire sweep)."""
        return [
            rt.stream_id for rt in self._by_index
            if rt.joined and not rt.finished
        ]

    # ------------------------------------------------------------------
    # Tenant-stall faults (see repro.sim.faults)
    # ------------------------------------------------------------------

    def stall_stream(self, stream_id: str) -> None:
        """Tenant-stall onset: the stream stops offering arrivals.

        In-flight and backlogged work is unaffected (a stalled source,
        not a departure); a stream that already left or finished is a
        no-op.
        """
        rt = self._rt[stream_id]
        if rt.left or rt.finished:
            return
        rt.stalled = True

    def resume_stream(self, stream_id: str,
                      now: float) -> List[TaskInstance]:
        """Tenant-stall expiry: the stream resumes offering arrivals.

        Open-loop streams resume from their (still-primed) arrival
        chain on their own.  An idle closed-loop stream lost its
        completion coupling during the stall, so its next inference is
        re-offered here — window, departure and quota checks included —
        and returned for the engine to enqueue.
        """
        rt = self._rt[stream_id]
        if not rt.stalled:
            return []
        rt.stalled = False
        if rt.left or rt.finished or not rt.joined or rt.busy:
            return []
        spec = rt.spec
        if spec.arrival.is_open_loop:
            if rt.backlog:
                t = rt.backlog.popleft()
                return [self._spawn(rt, now, arrival_time=t)]
            return []
        if spec.leave_s is not None and now >= spec.leave_s:
            self._finish(rt)
            return []
        duration = self.scenario.duration_s
        if duration is not None:
            if now >= duration:
                self._finish(rt)
                return []
            return [self._spawn(rt, now)]
        if rt.dispatched >= spec.quota:
            self._finish(rt)
            return []
        return [self._spawn(rt, now)]

    # ------------------------------------------------------------------

    def _open_loop_drained(self, rt: _StreamState) -> bool:
        """No backlog, no future arrivals: the stream can never run."""
        if rt.backlog:
            return False
        spec = rt.spec
        if spec.quota is not None and rt.generated >= spec.quota:
            return True
        # Future arrivals exist iff an ARRIVAL entry is still pending for
        # this stream (there is at most one; _push_next_arrival keeps it
        # primed while the generator yields).
        return all(
            not (prio == _ARRIVAL and index == rt.index)
            for _, prio, index in self._heap
        )

    def _push_next_arrival(self, rt: _StreamState) -> None:
        spec = rt.spec
        if rt.arrivals is None or rt.left:
            return
        if spec.quota is not None and rt.generated >= spec.quota:
            rt.arrivals = None
            return
        try:
            t = next(rt.arrivals)
        except StopIteration:
            rt.arrivals = None
            return
        heappush(self._heap, (t, _ARRIVAL, rt.index))
        self._timeline_next = None

    def _finish(self, rt: _StreamState) -> None:
        if not rt.finished and rt.joined:
            rt.finished = True
            # The stream's pending heap entries (if any) just went
            # stale; a cached peek may now point at a dead event.
            self._timeline_next = None
            self._retired.append(rt.stream_id)

    def _spawn(self, rt: _StreamState, now: float,
               arrival_time: Optional[float] = None) -> TaskInstance:
        # Open-loop arrivals are counted as offered when they are
        # generated (they may be backlogged or dropped before spawning);
        # closed-loop dispatches are offered at spawn time.
        if not rt.spec.arrival.is_open_loop:
            self._offered += 1
            if self.recorder is not None:
                self.recorder.record(ARRIVAL, now, rt.stream_id)
        graph = rt.graph
        serial = rt.dispatched
        rt.dispatched += 1
        rt.busy = True
        qos_s = (
            graph.qos_target_ms * 1e-3 * rt.spec.qos_scale
            if graph.qos_target_ms else float("inf")
        )
        return TaskInstance(
            instance_id=f"{rt.stream_id}#{serial}",
            stream_id=rt.stream_id,
            graph=graph,
            arrival_time=now if arrival_time is None else arrival_time,
            qos_target_s=qos_s,
        )


class ClosedLoopWorkload(ScenarioWorkload):
    """Closed-loop stream manager driven by the engine.

    Compatibility façade: lowers a :class:`WorkloadSpec` to its scenario
    and runs it through :class:`ScenarioWorkload` (behaviour is
    byte-identical to the pre-scenario implementation).
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(spec.to_scenario())
        self.spec = spec
