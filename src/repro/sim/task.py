"""Task instances: one inference execution flowing through the engine."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from ..models.graph import ModelGraph


class InstanceState(enum.Enum):
    """Lifecycle of one inference instance."""

    QUEUED = "queued"            # waiting for a free NPU core
    WAITING_PAGES = "waiting"    # holds a core, waiting for cache pages
    RUNNING = "running"          # executing its current layer
    DONE = "done"
    CANCELLED = "cancelled"      # aborted by a preemptive tenant departure


@dataclass
class LayerWork:
    """Resource requirements of one layer under the active policy.

    Attributes:
        compute_cycles: NPU cycles on the assigned core group.
        dram_bytes: DRAM traffic the layer will generate.
        hit_bytes: cache-hit bytes (transparent-cache policies only;
            feeds the Figure 2 hit-rate metric).
        access_bytes: cache-lookup bytes (hit-rate denominator).
    """

    compute_cycles: float
    dram_bytes: float
    hit_bytes: float = 0.0
    access_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.dram_bytes < 0:
            raise SimulationError("negative layer work")


@dataclass(slots=True)
class TaskInstance:
    """One inference of one model stream.

    Attributes:
        instance_id: unique id (``"<stream>#<n>"``).
        stream_id: the closed-loop stream this inference belongs to.
        graph: the model being executed.
        arrival_time: dispatch time (previous inference's finish).
        qos_target_s: per-inference deadline (scaled per QoS level).

    While an instance is RUNNING under the kernel event loop, its fluid
    state (``rem_compute_cycles`` / ``rem_dram_bytes``) is held in the
    engine's structure-of-arrays kernel
    (:class:`~repro.sim.kernel.RunningKernel`); the attributes here are
    synchronized back before any scheduler hook observes the instance and
    when it leaves the running set, so policy code always reads current
    values.  The methods below remain the scalar reference semantics
    (used by the unit tests); the kernel's batch operations are
    bit-identical to them.
    """

    instance_id: str
    stream_id: str
    graph: ModelGraph
    arrival_time: float
    qos_target_s: float = math.inf

    state: InstanceState = InstanceState.QUEUED
    layer_index: int = 0
    work: Optional[LayerWork] = None
    rem_compute_cycles: float = 0.0
    rem_dram_bytes: float = 0.0
    cores: int = 1
    wake_time: float = math.inf

    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    dram_bytes_total: float = 0.0
    hit_bytes_total: float = 0.0
    access_bytes_total: float = 0.0
    layers_executed: int = 0
    #: Policy-private scratch slots (e.g. the CaMDN schedulers keep the
    #: last LayerGrant and the task's resolved allocator context here);
    #: the engine never reads them.
    sched_scratch: Optional[object] = None
    sched_ctx: Optional[object] = None

    @property
    def num_layers(self) -> int:
        return len(self.graph.layers)

    @property
    def done_all_layers(self) -> bool:
        return self.layer_index >= self.num_layers

    def begin_work(self, work: LayerWork) -> None:
        """Enter RUNNING with the given per-layer requirements."""
        self.work = work
        self.rem_compute_cycles = work.compute_cycles
        self.rem_dram_bytes = work.dram_bytes
        self.state = InstanceState.RUNNING

    def advance(self, dt: float, compute_rate: float,
                dram_rate: float) -> None:
        """Fluid progress over ``dt`` seconds at the given rates."""
        if self.state is not InstanceState.RUNNING:
            return
        self.rem_compute_cycles = max(
            0.0, self.rem_compute_cycles - dt * compute_rate
        )
        self.rem_dram_bytes = max(
            0.0, self.rem_dram_bytes - dt * dram_rate
        )

    def layer_finished(self) -> bool:
        """Both the compute and memory streams of the layer completed."""
        return (
            self.state is InstanceState.RUNNING
            and self.rem_compute_cycles <= 1e-9
            and self.rem_dram_bytes <= 1e-9
        )

    def time_to_finish_layer(self, compute_rate: float,
                             dram_rate: float) -> float:
        """Seconds until the current layer completes at constant rates."""
        if self.state is not InstanceState.RUNNING:
            return math.inf
        t_compute = (
            self.rem_compute_cycles / compute_rate
            if self.rem_compute_cycles > 0 else 0.0
        )
        t_dram = (
            self.rem_dram_bytes / dram_rate
            if self.rem_dram_bytes > 0 else 0.0
        )
        return max(t_compute, t_dram)

    def account_layer(self) -> None:
        """Fold the finished layer's traffic into the instance totals."""
        if self.work is None:
            raise SimulationError(
                f"{self.instance_id}: no work to account"
            )
        self.dram_bytes_total += self.work.dram_bytes
        self.hit_bytes_total += self.work.hit_bytes
        self.access_bytes_total += self.work.access_bytes
        self.layers_executed += 1

    @property
    def latency(self) -> float:
        """Dispatch-to-finish latency (includes queueing)."""
        if self.finish_time is None:
            raise SimulationError(f"{self.instance_id} not finished")
        return self.finish_time - self.arrival_time

    def met_deadline(self) -> bool:
        return self.latency <= self.qos_target_s
