"""QoS metrics (Figure 9): SLA satisfaction, STP and fairness.

Definitions follow AuRORA (Kim et al., MICRO 2023), as the paper does:

* **SLA satisfaction rate** — fraction of inferences finishing within
  their (scaled) latency target.
* **System throughput (STP)** — sum over tenants of normalized progress
  ``NP_i = T_isolated_i / T_shared_i`` (weighted-speedup form).
* **Fairness** — ``min_{i,j} NP_i / NP_j``: the worst pairwise equality of
  progress among co-running tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import SimulationError
from .metrics import MetricsCollector


@dataclass(frozen=True)
class QoSReport:
    """Figure 9 metrics for one (scheduler, QoS level) cell."""

    scheduler: str
    qos_scale: float
    sla_rate: float
    stp: float
    fairness: float


def sla_rate(metrics: MetricsCollector) -> float:
    """Fraction of measured inferences that met their deadline."""
    if not metrics.records:
        raise SimulationError("no measured inferences")
    met = sum(1 for r in metrics.records if r.met_deadline)
    return met / len(metrics.records)


def _normalized_progress(
    metrics: MetricsCollector,
    isolated_latency_s: Mapping[str, float],
) -> Dict[str, float]:
    """Per-stream ``T_isolated / T_shared`` (shared = mean latency)."""
    by_stream: Dict[str, list] = {}
    for rec in metrics.records:
        by_stream.setdefault(rec.stream_id, []).append(rec.latency_s)
    progress: Dict[str, float] = {}
    for stream_id, latencies in by_stream.items():
        model = stream_id.split("@", 1)[0]
        if model not in isolated_latency_s:
            raise SimulationError(
                f"no isolated latency for model {model!r}"
            )
        shared = sum(latencies) / len(latencies)
        if shared <= 0:
            raise SimulationError(f"{stream_id}: non-positive latency")
        progress[stream_id] = isolated_latency_s[model] / shared
    return progress


def system_throughput(
    metrics: MetricsCollector,
    isolated_latency_s: Mapping[str, float],
) -> float:
    """STP: sum of per-stream normalized progress."""
    return sum(_normalized_progress(metrics, isolated_latency_s).values())


def fairness(
    metrics: MetricsCollector,
    isolated_latency_s: Mapping[str, float],
) -> float:
    """Fairness: worst pairwise ratio of normalized progress."""
    progress = _normalized_progress(metrics, isolated_latency_s)
    if not progress:
        raise SimulationError("no streams to compare")
    values = list(progress.values())
    return min(values) / max(values)


def qos_report(
    scheduler: str,
    qos_scale: float,
    metrics: MetricsCollector,
    isolated_latency_s: Mapping[str, float],
) -> QoSReport:
    """Bundle all three Figure 9 metrics."""
    return QoSReport(
        scheduler=scheduler,
        qos_scale=qos_scale,
        sla_rate=sla_rate(metrics),
        stp=system_throughput(metrics, isolated_latency_s),
        fairness=fairness(metrics, isolated_latency_s),
    )
