"""Execution-timeline tracing for the multi-tenant engine.

Two independent trace facilities live here:

* :class:`TraceRecorder` — per-layer execution *spans* (instance, layer,
  start, end, DRAM bytes), from which users can render Gantt-style
  timelines, compute per-model bandwidth profiles, or debug allocation
  stalls (``WAIT`` spans mark time spent waiting for cache pages).
* :class:`EventTrace` — the versioned, content-hashed *event* capture
  format: every scenario-level event of a run (tenant joins, arrivals,
  dispatches, completions, departures, cancellations, backlog drops)
  with exact timestamps.  An :class:`EventTraceRecorder` attached to the
  workload and engine collects the events; the finished
  :class:`EventTrace` serializes to canonical JSON with an embedded
  SHA-256 content hash (exact float round-trip, like
  :class:`~repro.sim.scenario.ScenarioSpec`), and
  :meth:`EventTrace.replay_scenario` re-feeds the captured run as a
  scenario whose open-loop streams replay their recorded arrival
  schedules verbatim — reproducing ``metric_summary()`` byte-identically
  under the same policy and SoC.

Replay fidelity rests on one float-determinism argument: an open-loop
source stream's arrival times are *inputs* (generator outputs), so
replaying the recorded floats reproduces the source run's timeline
boundaries exactly.  A closed-loop stream's arrival times are *outputs*
(each dispatch is coupled to the previous completion), so its replay
keeps the coupling (``ArrivalProcess.replay(None)``) instead of pinning
times — re-deriving ``fl(t1 - t0)`` from recorded absolute times could
split fluid steps differently at the ulp level.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import WorkloadError
from .scenario import ArrivalProcess, ScenarioSpec


class SpanKind(enum.Enum):
    """What an instance was doing during a span."""

    QUEUED = "queued"
    WAIT_PAGES = "wait_pages"
    LAYER = "layer"


@dataclass(frozen=True)
class TraceSpan:
    """One closed interval of an instance's timeline."""

    instance_id: str
    kind: SpanKind
    layer_index: int
    start_s: float
    end_s: float
    dram_bytes: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TraceRecorder:
    """Collects spans; attach via ``MultiTenantEngine(trace=...)``."""

    spans: List[TraceSpan] = field(default_factory=list)
    _open: Dict[str, tuple] = field(default_factory=dict)

    # -- engine-facing hooks ------------------------------------------

    def begin(self, instance_id: str, kind: SpanKind, layer_index: int,
              now: float) -> None:
        """Open a span (closing any previous open span first)."""
        self.end(instance_id, now)
        self._open[instance_id] = (kind, layer_index, now)

    def end(self, instance_id: str, now: float,
            dram_bytes: float = 0.0) -> None:
        """Close the instance's open span, if any."""
        open_span = self._open.pop(instance_id, None)
        if open_span is None:
            return
        kind, layer_index, start = open_span
        if now < start:
            raise ValueError("span ends before it starts")
        self.spans.append(
            TraceSpan(
                instance_id=instance_id,
                kind=kind,
                layer_index=layer_index,
                start_s=start,
                end_s=now,
                dram_bytes=dram_bytes,
            )
        )

    # -- analysis helpers ----------------------------------------------

    def spans_of(self, instance_id: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.instance_id == instance_id]

    def wait_time_s(self, instance_id: Optional[str] = None) -> float:
        """Total time spent waiting for cache pages."""
        return sum(
            s.duration_s for s in self.spans
            if s.kind is SpanKind.WAIT_PAGES
            and (instance_id is None or s.instance_id == instance_id)
        )

    def busy_time_s(self, instance_id: str) -> float:
        """Total layer-execution time of one instance."""
        return sum(
            s.duration_s for s in self.spans_of(instance_id)
            if s.kind is SpanKind.LAYER
        )

    def timeline_text(self, width: int = 72,
                      max_rows: int = 16) -> str:
        """Rough ASCII timeline: one row per instance, '#' layer spans,
        '.' page waits."""
        if not self.spans:
            return "(empty trace)"
        t_end = max(s.end_s for s in self.spans)
        if t_end <= 0:
            return "(zero-length trace)"
        rows = []
        instances = sorted({s.instance_id for s in self.spans})
        for instance_id in instances[:max_rows]:
            line = [" "] * width
            for span in self.spans_of(instance_id):
                lo = int(span.start_s / t_end * (width - 1))
                hi = max(int(span.end_s / t_end * (width - 1)), lo)
                char = "#" if span.kind is SpanKind.LAYER else "."
                for i in range(lo, hi + 1):
                    line[i] = char
            rows.append(f"{instance_id:<16}|{''.join(line)}|")
        return "\n".join(rows)


# ----------------------------------------------------------------------
# Event traces: capture and replay
# ----------------------------------------------------------------------

#: Serialization schema of event traces; bump on field changes.
#: v2: added the ``fault`` event kind (fault-injection boundaries).
TRACE_SCHEMA_VERSION = 2

#: Event kinds, in the order they occur at one timestamp.
JOIN = "join"              # tenant admitted (scenario timeline)
ARRIVAL = "arrival"        # inference offered (open- or closed-loop)
DISPATCH = "dispatch"      # instance granted cores, admitted to engine
COMPLETION = "completion"  # instance finished all layers
DROP = "drop"              # backlogged arrival discarded by a departure
LEAVE = "leave"            # tenant departed (scenario timeline)
CANCEL = "cancel"          # in-flight/queued instance aborted by departure
FAULT = "fault"            # injected fault boundary (onset or expiry)

_EVENT_KINDS = (JOIN, ARRIVAL, DISPATCH, COMPLETION, DROP, LEAVE, CANCEL,
                FAULT)


@dataclass(frozen=True)
class TraceEvent:
    """One scenario-level event of an engine run."""

    kind: str
    t: float
    stream: str
    instance: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise WorkloadError(
                f"unknown trace-event kind {self.kind!r}; "
                f"known: {_EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "stream": self.stream,
            "instance": self.instance,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        unknown = sorted(set(data) - {"kind", "t", "stream", "instance"})
        if unknown:
            raise WorkloadError(
                f"unknown trace-event fields {unknown}"
            )
        return cls(**data)


@dataclass
class EventTraceRecorder:
    """Collects :class:`TraceEvent` entries during a run.

    Attach via ``ScenarioWorkload(spec, recorder=...)`` (joins, arrivals,
    drops, leaves — exact scheduled timestamps) and
    ``MultiTenantEngine(event_recorder=...)`` (dispatches, completions,
    cancellations — engine clock).  Recording is pure observation: it
    never perturbs the simulation.
    """

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, kind: str, t: float, stream: str,
               instance: Optional[str] = None) -> None:
        self.events.append(TraceEvent(kind, t, stream, instance))

    def finish(self, scenario: ScenarioSpec, policy: str) -> "EventTrace":
        """Freeze the recording into an :class:`EventTrace`."""
        return EventTrace(
            scenario=scenario, policy=policy, events=tuple(self.events)
        )


@dataclass(frozen=True)
class EventTrace:
    """A captured run: source scenario, policy name and event list.

    Serializes to canonical JSON with an embedded content hash
    (:meth:`to_dict` / :meth:`from_dict` round-trip exactly);
    :meth:`replay_scenario` turns the capture back into a runnable
    :class:`~repro.sim.scenario.ScenarioSpec`.
    """

    scenario: ScenarioSpec
    policy: str
    events: Tuple[TraceEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def content_hash(self) -> str:
        """SHA-256 over the canonical payload (sans the hash itself)."""
        from ..core.serialize import stable_content_hash

        return stable_content_hash(self._payload())

    def _payload(self) -> dict:
        return {
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "policy": self.policy,
            "scenario": self.scenario.to_dict(),
            "events": [e.to_dict() for e in self.events],
        }

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (exact float round-trip), with the
        content hash embedded for integrity checking on load."""
        payload = self._payload()
        payload["content_hash"] = self.content_hash
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "EventTrace":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            WorkloadError: unsupported schema version, or the embedded
                content hash does not match the payload (corruption).
        """
        version = data.get("trace_schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported trace schema {version!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        trace = cls(
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            policy=data["policy"],
            events=tuple(
                TraceEvent.from_dict(e) for e in data["events"]
            ),
        )
        recorded = data.get("content_hash")
        if recorded is not None and recorded != trace.content_hash:
            raise WorkloadError(
                f"trace content hash mismatch: recorded "
                f"{recorded[:12]}…, recomputed "
                f"{trace.content_hash[:12]}… (corrupt trace?)"
            )
        return trace

    # -- persistence ---------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EventTrace":
        """Read a JSON trace file.

        Raises:
            WorkloadError: the file is unreadable or not a supported
                (intact) trace.
        """
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise WorkloadError(
                f"cannot read trace file {path}: {exc}"
            ) from exc
        return cls.from_dict(data)

    # -- analysis ------------------------------------------------------

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    # -- replay --------------------------------------------------------

    def replay_scenario(self) -> ScenarioSpec:
        """The captured run as a runnable scenario.

        Open-loop source streams get a ``replay`` arrival process
        carrying their recorded arrival times verbatim (exact floats, so
        the replayed run hits the same timeline boundaries); closed-loop
        source streams get ``ArrivalProcess.replay(None)``, which keeps
        the completion coupling (their arrival times were outputs of the
        source run, not offered load).  Under the same policy and SoC
        the replay reproduces the source ``metric_summary()``
        byte-identically.

        ``fault`` events are observational only and are *not* replayed:
        a capture taken under fault injection must be re-run with the
        same :class:`~repro.sim.faults.FaultSpec` to reproduce.
        """
        arrivals: Dict[str, List[float]] = {}
        for event in self.events:
            if event.kind == ARRIVAL:
                arrivals.setdefault(event.stream, []).append(event.t)
        streams = []
        for i, spec in enumerate(self.scenario.streams):
            stream_id = f"{spec.model}@{i}"
            if spec.arrival.is_open_loop:
                arrival = ArrivalProcess.replay(
                    tuple(arrivals.get(stream_id, ()))
                )
            else:
                arrival = ArrivalProcess.replay(None)
            streams.append(replace(spec, arrival=arrival))
        return ScenarioSpec(
            streams=tuple(streams),
            duration_s=self.scenario.duration_s,
            warmup_s=self.scenario.warmup_s,
        )
