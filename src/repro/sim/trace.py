"""Execution-timeline tracing for the multi-tenant engine.

A :class:`TraceRecorder` attached to a
:class:`~repro.sim.engine.MultiTenantEngine` collects per-layer execution
spans (instance, layer, start, end, DRAM bytes), from which users can
render Gantt-style timelines, compute per-model bandwidth profiles, or
debug allocation stalls (``WAIT`` spans mark time spent waiting for cache
pages).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SpanKind(enum.Enum):
    """What an instance was doing during a span."""

    QUEUED = "queued"
    WAIT_PAGES = "wait_pages"
    LAYER = "layer"


@dataclass(frozen=True)
class TraceSpan:
    """One closed interval of an instance's timeline."""

    instance_id: str
    kind: SpanKind
    layer_index: int
    start_s: float
    end_s: float
    dram_bytes: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TraceRecorder:
    """Collects spans; attach via ``MultiTenantEngine(trace=...)``."""

    spans: List[TraceSpan] = field(default_factory=list)
    _open: Dict[str, tuple] = field(default_factory=dict)

    # -- engine-facing hooks ------------------------------------------

    def begin(self, instance_id: str, kind: SpanKind, layer_index: int,
              now: float) -> None:
        """Open a span (closing any previous open span first)."""
        self.end(instance_id, now)
        self._open[instance_id] = (kind, layer_index, now)

    def end(self, instance_id: str, now: float,
            dram_bytes: float = 0.0) -> None:
        """Close the instance's open span, if any."""
        open_span = self._open.pop(instance_id, None)
        if open_span is None:
            return
        kind, layer_index, start = open_span
        if now < start:
            raise ValueError("span ends before it starts")
        self.spans.append(
            TraceSpan(
                instance_id=instance_id,
                kind=kind,
                layer_index=layer_index,
                start_s=start,
                end_s=now,
                dram_bytes=dram_bytes,
            )
        )

    # -- analysis helpers ----------------------------------------------

    def spans_of(self, instance_id: str) -> List[TraceSpan]:
        return [s for s in self.spans if s.instance_id == instance_id]

    def wait_time_s(self, instance_id: Optional[str] = None) -> float:
        """Total time spent waiting for cache pages."""
        return sum(
            s.duration_s for s in self.spans
            if s.kind is SpanKind.WAIT_PAGES
            and (instance_id is None or s.instance_id == instance_id)
        )

    def busy_time_s(self, instance_id: str) -> float:
        """Total layer-execution time of one instance."""
        return sum(
            s.duration_s for s in self.spans_of(instance_id)
            if s.kind is SpanKind.LAYER
        )

    def timeline_text(self, width: int = 72,
                      max_rows: int = 16) -> str:
        """Rough ASCII timeline: one row per instance, '#' layer spans,
        '.' page waits."""
        if not self.spans:
            return "(empty trace)"
        t_end = max(s.end_s for s in self.spans)
        if t_end <= 0:
            return "(zero-length trace)"
        rows = []
        instances = sorted({s.instance_id for s in self.spans})
        for instance_id in instances[:max_rows]:
            line = [" "] * width
            for span in self.spans_of(instance_id):
                lo = int(span.start_s / t_end * (width - 1))
                hi = max(int(span.end_s / t_end * (width - 1)), lo)
                char = "#" if span.kind is SpanKind.LAYER else "."
                for i in range(lo, hi + 1):
                    line[i] = char
            rows.append(f"{instance_id:<16}|{''.join(line)}|")
        return "\n".join(rows)
