"""Declarative multi-tenant scenarios: arrival processes and tenancy.

The paper's experiments pin one workload shape — a fixed tenant set of
closed-loop streams, all present from t=0 — but the headline claim is
adaptive cache management for *dynamic* multi-DNN workloads.  This module
makes the workload axis declarative so arrival dynamics are first-class
experiment inputs:

* :class:`ArrivalProcess` — how one stream's inferences arrive: the
  closed loop of the paper, open-loop periodic dispatch, a seeded Poisson
  process, a bursty on/off pattern, a Markov-modulated Poisson process,
  a diurnal (sinusoidally modulated, optionally flash-crowd-boosted)
  Poisson process, or the replay of a captured run's exact timeline
  (see :mod:`repro.sim.trace`).
* :class:`StreamSpec` — one tenant: model, QoS class, arrival process,
  count quota, and a ``join_s``/``leave_s`` lifecycle so tenants can
  enter and leave mid-run without coordination (the asynchronous
  multiple-access regime of the conflict-avoiding-code literature).
* :class:`ScenarioSpec` — the full scenario: tenant set plus measurement
  window.  Specs serialize to canonical JSON with exact float round-trip
  (see :mod:`repro.core.serialize`), so they can key on-disk caches.

A process-wide registry maps names to curated scenarios
(:func:`register_scenario` / :func:`get_scenario` /
:func:`scenario_names`); ``python -m repro.experiments.runner
--list-scenarios`` prints it.

Every spec is a frozen dataclass: hashable, comparable, and safe to share
across threads and worker processes.  Seeded randomness (Poisson
arrivals) is derived purely from the spec, so a scenario simulates
identically under any ``--jobs`` setting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import WorkloadError

#: Serialization schema of scenario specs; bump on field changes.
#: v2: modulated arrivals (mmpp / diurnal) and trace replay — adds the
#: ``rates_hz`` / ``sojourn_s`` / ``amplitude`` / ``flash_every_s`` /
#: ``flash_width_s`` / ``flash_boost`` / ``times`` fields.
SCENARIO_SCHEMA_VERSION = 2

#: Arrival-process kinds.
CLOSED_LOOP = "closed-loop"
PERIODIC = "periodic"
POISSON = "poisson"
BURSTY = "bursty"
MMPP = "mmpp"
DIURNAL = "diurnal"
REPLAY = "replay"

_KINDS = (CLOSED_LOOP, PERIODIC, POISSON, BURSTY, MMPP, DIURNAL, REPLAY)


@dataclass(frozen=True)
class ArrivalProcess:
    """How one stream's inferences arrive.

    Attributes:
        kind: ``"closed-loop"`` (next inference dispatched the instant the
            previous completes — the paper's setup), ``"periodic"`` (open
            loop, one arrival every ``period_s``), ``"poisson"`` (open
            loop, exponential inter-arrivals at ``rate_hz``, seeded), or
            ``"bursty"`` (open loop: ``on_s`` seconds of periodic
            arrivals, then ``off_s`` seconds of silence, repeating).
        period_s: inter-arrival period (periodic / bursty).
        rate_hz: mean arrival rate (poisson).
        phase_s: offset of the first arrival after the stream joins
            (periodic / bursty; staggers otherwise-identical streams).
        on_s / off_s: burst window lengths (bursty).
        seed: Poisson / mmpp / diurnal RNG seed.  The effective seed is
            salted with the stream's index, so identical processes on
            different streams draw independent (but reproducible)
            arrival times.
        rates_hz: per-state arrival rates (mmpp; >= 2 states, each
            rate >= 0 with at least one positive).
        sojourn_s: per-state mean dwell times (mmpp; one per state,
            each > 0).  State transitions cycle through the state list
            with exponential sojourns, and arrivals inside a state are
            Poisson at that state's rate — the exponential's
            memorylessness makes discarding the arrival candidate that
            overshoots a state boundary an exact MMPP simulation.
        amplitude: diurnal modulation depth in [0, 1]: the rate swings
            sinusoidally between ``rate_hz * (1 - amplitude)`` and
            ``rate_hz * (1 + amplitude)`` over one ``period_s`` cycle.
        flash_every_s / flash_width_s / flash_boost: optional recurring
            flash crowds on the diurnal process: every ``flash_every_s``
            seconds the rate is multiplied by ``flash_boost`` for
            ``flash_width_s`` seconds (the sudden-surge regime layered
            on the slow cycle).
        times: explicit absolute arrival schedule (replay).  ``None`` on
            a replay process means the source stream was
            completion-coupled (closed loop): its realized arrival times
            were *outputs* of the simulation, so the faithful replay
            preserves the coupling instead of pinning the times.

    Open-loop arrivals are *offered* regardless of service progress: if a
    stream's previous inference is still in flight, the new arrival waits
    in the stream's FIFO and its queueing delay counts toward latency.
    """

    kind: str = CLOSED_LOOP
    period_s: Optional[float] = None
    rate_hz: Optional[float] = None
    phase_s: float = 0.0
    on_s: Optional[float] = None
    off_s: Optional[float] = None
    seed: int = 2025
    rates_hz: Optional[Tuple[float, ...]] = None
    sojourn_s: Optional[Tuple[float, ...]] = None
    amplitude: float = 0.0
    flash_every_s: Optional[float] = None
    flash_width_s: Optional[float] = None
    flash_boost: float = 1.0
    times: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(
                f"unknown arrival kind {self.kind!r}; known: {_KINDS}"
            )
        if self.rates_hz is not None:
            object.__setattr__(self, "rates_hz", tuple(self.rates_hz))
        if self.sojourn_s is not None:
            object.__setattr__(self, "sojourn_s", tuple(self.sojourn_s))
        if self.times is not None:
            object.__setattr__(self, "times", tuple(self.times))
        if self.kind in (PERIODIC, BURSTY, DIURNAL):
            if self.period_s is None or self.period_s <= 0:
                raise WorkloadError(f"{self.kind} needs period_s > 0")
        if self.kind in (POISSON, DIURNAL):
            if self.rate_hz is None or self.rate_hz <= 0:
                raise WorkloadError(f"{self.kind} needs rate_hz > 0")
        if self.kind == BURSTY:
            if self.on_s is None or self.on_s <= 0:
                raise WorkloadError("bursty needs on_s > 0")
            if self.off_s is None or self.off_s < 0:
                raise WorkloadError("bursty needs off_s >= 0")
        if self.kind == MMPP:
            if self.rates_hz is None or len(self.rates_hz) < 2:
                raise WorkloadError("mmpp needs >= 2 state rates_hz")
            if any(r < 0 for r in self.rates_hz) or \
                    not any(r > 0 for r in self.rates_hz):
                raise WorkloadError(
                    "mmpp rates_hz must be >= 0 with one positive"
                )
            if self.sojourn_s is None or \
                    len(self.sojourn_s) != len(self.rates_hz):
                raise WorkloadError(
                    "mmpp needs one sojourn_s per state"
                )
            if any(s <= 0 for s in self.sojourn_s):
                raise WorkloadError("mmpp sojourn_s must be positive")
        if self.kind == DIURNAL:
            if not 0.0 <= self.amplitude <= 1.0:
                raise WorkloadError("diurnal amplitude must be in [0, 1]")
            flash = (self.flash_every_s, self.flash_width_s)
            if any(f is not None for f in flash):
                if any(f is None or f <= 0 for f in flash):
                    raise WorkloadError(
                        "diurnal flash crowds need flash_every_s > 0 "
                        "and flash_width_s > 0"
                    )
                if self.flash_boost < 1.0:
                    raise WorkloadError(
                        "diurnal flash_boost must be >= 1"
                    )
        if self.kind == REPLAY and self.times is not None:
            if any(t < 0 for t in self.times):
                raise WorkloadError("replay times cannot be negative")
            if any(b < a for a, b in zip(self.times, self.times[1:])):
                raise WorkloadError(
                    "replay times must be non-decreasing"
                )
        if self.phase_s < 0:
            raise WorkloadError("phase_s cannot be negative")

    # -- constructors --------------------------------------------------

    @classmethod
    def closed_loop(cls) -> "ArrivalProcess":
        """The paper's dispatch rule (completion-coupled arrivals)."""
        return cls(kind=CLOSED_LOOP)

    @classmethod
    def periodic(cls, period_s: float,
                 phase_s: float = 0.0) -> "ArrivalProcess":
        """Open-loop fixed-rate arrivals."""
        return cls(kind=PERIODIC, period_s=period_s, phase_s=phase_s)

    @classmethod
    def poisson(cls, rate_hz: float, seed: int = 2025) -> "ArrivalProcess":
        """Open-loop memoryless arrivals at ``rate_hz`` (seeded)."""
        return cls(kind=POISSON, rate_hz=rate_hz, seed=seed)

    @classmethod
    def bursty(cls, period_s: float, on_s: float, off_s: float,
               phase_s: float = 0.0) -> "ArrivalProcess":
        """Open-loop on/off arrivals: ``on_s`` of periodic dispatch at
        ``period_s``, then ``off_s`` of silence, repeating."""
        return cls(kind=BURSTY, period_s=period_s, on_s=on_s,
                   off_s=off_s, phase_s=phase_s)

    @classmethod
    def mmpp(cls, rates_hz: Sequence[float],
             sojourn_s: Sequence[float],
             seed: int = 2025) -> "ArrivalProcess":
        """Markov-modulated Poisson arrivals: the stream cycles through
        hidden states with exponential sojourns (mean ``sojourn_s[i]``),
        offering Poisson arrivals at ``rates_hz[i]`` while in state
        ``i`` (seeded, reproducible under any ``--jobs``)."""
        return cls(kind=MMPP, rates_hz=tuple(rates_hz),
                   sojourn_s=tuple(sojourn_s), seed=seed)

    @classmethod
    def diurnal(cls, rate_hz: float, period_s: float,
                amplitude: float = 0.5, phase_s: float = 0.0,
                flash_every_s: Optional[float] = None,
                flash_width_s: Optional[float] = None,
                flash_boost: float = 1.0,
                seed: int = 2025) -> "ArrivalProcess":
        """Diurnal / flash-crowd arrivals: a non-homogeneous Poisson
        process whose rate swings sinusoidally around ``rate_hz`` over
        a ``period_s`` cycle, optionally multiplied by ``flash_boost``
        during recurring ``flash_width_s``-wide flash-crowd windows
        (every ``flash_every_s``).  Simulated by thinning against the
        peak rate, seeded and reproducible."""
        return cls(kind=DIURNAL, rate_hz=rate_hz, period_s=period_s,
                   amplitude=amplitude, phase_s=phase_s,
                   flash_every_s=flash_every_s,
                   flash_width_s=flash_width_s,
                   flash_boost=flash_boost, seed=seed)

    @classmethod
    def replay(cls, times: Optional[Sequence[float]]
               ) -> "ArrivalProcess":
        """Replay of a captured run (see :mod:`repro.sim.trace`):
        an explicit absolute arrival schedule for open-loop source
        streams, or completion coupling (``times=None``) for
        closed-loop sources."""
        return cls(
            kind=REPLAY,
            times=None if times is None else tuple(times),
        )

    # ------------------------------------------------------------------

    @property
    def is_open_loop(self) -> bool:
        if self.kind == REPLAY:
            # A replayed closed-loop stream stays completion-coupled:
            # its recorded arrival times were outputs of the source
            # simulation, not offered load.
            return self.times is not None
        return self.kind != CLOSED_LOOP

    def arrival_times(self, stream_index: int, start_s: float,
                      end_s: float) -> Iterator[float]:
        """Absolute arrival times in ``[start_s, end_s)``.

        Pure function of ``(self, stream_index, start_s, end_s)``; the
        Poisson stream seeds a private RNG from ``(seed, stream_index)``
        via string seeding (SHA-512 based, stable across processes and
        ``PYTHONHASHSEED`` values).

        Returns a plain iterator *object* (never a generator): the
        engine's checkpoint/restore machinery pickles in-flight arrival
        chains mid-draw, and generators cannot be pickled.  Each class
        below transcribes its former generator's draw sequence exactly —
        the committed reference summaries pin the equivalence.
        """
        if self.kind == CLOSED_LOOP:
            return iter(())
        if self.kind == REPLAY:
            if self.times is None:
                return iter(())
            return _ReplayTimes(self.times, start_s, end_s)
        if self.kind == PERIODIC:
            return _PeriodicTimes(self.period_s, start_s + self.phase_s,
                                  end_s)
        if self.kind == POISSON:
            return _PoissonTimes(self.rate_hz, self.seed, stream_index,
                                 start_s, end_s)
        if self.kind == MMPP:
            return _MmppTimes(self, stream_index, start_s, end_s)
        if self.kind == DIURNAL:
            return _DiurnalTimes(self, stream_index, start_s, end_s)
        # BURSTY: periodic arrivals inside [k*(on+off), k*(on+off)+on).
        return _BurstyTimes(self, start_s, end_s)

    def _diurnal_rate(self, t: float) -> float:
        """Instantaneous arrival rate of the diurnal process at ``t``."""
        rate = self.rate_hz * (
            1.0 + self.amplitude
            * math.sin(2.0 * math.pi * (t - self.phase_s)
                       / self.period_s)
        )
        if self.flash_every_s is not None and \
                (t % self.flash_every_s) < self.flash_width_s:
            rate *= self.flash_boost
        return rate

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (exact float round-trip)."""
        return {
            "kind": self.kind,
            "period_s": self.period_s,
            "rate_hz": self.rate_hz,
            "phase_s": self.phase_s,
            "on_s": self.on_s,
            "off_s": self.off_s,
            "seed": self.seed,
            "rates_hz": (
                None if self.rates_hz is None else list(self.rates_hz)
            ),
            "sojourn_s": (
                None if self.sojourn_s is None else list(self.sojourn_s)
            ),
            "amplitude": self.amplitude,
            "flash_every_s": self.flash_every_s,
            "flash_width_s": self.flash_width_s,
            "flash_boost": self.flash_boost,
            "times": None if self.times is None else list(self.times),
        }

    #: Field names accepted by :meth:`from_dict` (the dataclass fields).
    _FIELDS = frozenset((
        "kind", "period_s", "rate_hz", "phase_s", "on_s", "off_s",
        "seed", "rates_hz", "sojourn_s", "amplitude", "flash_every_s",
        "flash_width_s", "flash_boost", "times",
    ))

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalProcess":
        """Rebuild from :meth:`to_dict` output.

        Raises:
            WorkloadError: unknown ``kind`` or unknown field names (so a
                mistyped or future-version process fails with a clear
                message instead of a ``TypeError``/``KeyError``).
        """
        kind = data.get("kind", CLOSED_LOOP)
        if kind not in _KINDS:
            raise WorkloadError(
                f"unknown arrival kind {kind!r}; known: {_KINDS}"
            )
        unknown = sorted(set(data) - cls._FIELDS)
        if unknown:
            raise WorkloadError(
                f"unknown arrival-process fields {unknown}; "
                f"known: {sorted(cls._FIELDS)}"
            )
        return cls(**data)


class _PeriodicTimes:
    """Picklable iterator: fixed-period arrivals starting at ``phase``."""

    __slots__ = ("t", "period_s", "end_s")

    def __init__(self, period_s: float, first_s: float,
                 end_s: float) -> None:
        self.t = first_s
        self.period_s = period_s
        self.end_s = end_s

    def __iter__(self) -> "_PeriodicTimes":
        return self

    def __next__(self) -> float:
        t = self.t
        if t >= self.end_s:
            raise StopIteration
        self.t = t + self.period_s
        return t


class _ReplayTimes:
    """Picklable iterator: recorded timestamps clipped to a window."""

    __slots__ = ("times", "i", "start_s", "end_s")

    def __init__(self, times: Tuple[float, ...], start_s: float,
                 end_s: float) -> None:
        self.times = times
        self.i = 0
        self.start_s = start_s
        self.end_s = end_s

    def __iter__(self) -> "_ReplayTimes":
        return self

    def __next__(self) -> float:
        times = self.times
        while self.i < len(times):
            t = times[self.i]
            self.i += 1
            if self.start_s <= t < self.end_s:
                return t
        raise StopIteration


class _PoissonTimes:
    """Picklable iterator: seeded Poisson arrivals (private RNG carries
    the draw position, so a pickled iterator resumes the exact
    sequence)."""

    __slots__ = ("rng", "t", "rate_hz", "end_s")

    def __init__(self, rate_hz: float, seed: int, stream_index: int,
                 start_s: float, end_s: float) -> None:
        self.rng = random.Random(f"poisson:{seed}:{stream_index}")
        self.t = start_s
        self.rate_hz = rate_hz
        self.end_s = end_s

    def __iter__(self) -> "_PoissonTimes":
        return self

    def __next__(self) -> float:
        t = self.t + self.rng.expovariate(self.rate_hz)
        if t >= self.end_s:
            raise StopIteration
        self.t = t
        return t


class _MmppTimes:
    """Picklable iterator: Markov-modulated Poisson arrivals (exact via
    memorylessness: an arrival candidate overshooting the state boundary
    is discarded and redrawn at the new state's rate)."""

    __slots__ = ("proc", "rng", "state", "t", "state_end", "end_s")

    def __init__(self, proc: "ArrivalProcess", stream_index: int,
                 start_s: float, end_s: float) -> None:
        self.proc = proc
        self.rng = random.Random(f"mmpp:{proc.seed}:{stream_index}")
        self.state = 0
        self.t = start_s
        self.state_end = start_s + self.rng.expovariate(
            1.0 / proc.sojourn_s[0]
        )
        self.end_s = end_s

    def __iter__(self) -> "_MmppTimes":
        return self

    def __next__(self) -> float:
        proc = self.proc
        rng = self.rng
        while self.t < self.end_s:
            rate = proc.rates_hz[self.state]
            nxt = self.t + rng.expovariate(rate) if rate > 0 else math.inf
            if nxt >= self.state_end:
                self.t = self.state_end
                self.state = (self.state + 1) % len(proc.rates_hz)
                self.state_end = self.t + rng.expovariate(
                    1.0 / proc.sojourn_s[self.state]
                )
                continue
            if nxt >= self.end_s:
                raise StopIteration
            self.t = nxt
            return nxt
        raise StopIteration


class _DiurnalTimes:
    """Picklable iterator: diurnal / flash-crowd arrivals via
    Lewis-Shedler thinning against the process's peak rate."""

    __slots__ = ("proc", "rng", "peak", "t", "end_s")

    def __init__(self, proc: "ArrivalProcess", stream_index: int,
                 start_s: float, end_s: float) -> None:
        self.proc = proc
        self.rng = random.Random(f"diurnal:{proc.seed}:{stream_index}")
        peak = proc.rate_hz * (1.0 + proc.amplitude)
        if proc.flash_every_s is not None:
            peak *= proc.flash_boost
        self.peak = peak
        self.t = start_s
        self.end_s = end_s

    def __iter__(self) -> "_DiurnalTimes":
        return self

    def __next__(self) -> float:
        rng = self.rng
        peak = self.peak
        while True:
            t = self.t + rng.expovariate(peak)
            if t >= self.end_s:
                raise StopIteration
            self.t = t
            if rng.random() * peak <= self.proc._diurnal_rate(t):
                return t


class _BurstyTimes:
    """Picklable iterator: periodic arrivals inside the on-windows
    ``[k*(on+off), k*(on+off)+on)``."""

    __slots__ = ("proc", "t", "start_s", "end_s", "cycle")

    def __init__(self, proc: "ArrivalProcess", start_s: float,
                 end_s: float) -> None:
        self.proc = proc
        self.t = start_s + proc.phase_s
        self.start_s = start_s
        self.end_s = end_s
        self.cycle = proc.on_s + proc.off_s

    def __iter__(self) -> "_BurstyTimes":
        return self

    def __next__(self) -> float:
        proc = self.proc
        cycle = self.cycle
        while self.t < self.end_s:
            t = self.t
            offset = (t - self.start_s) % cycle if cycle > 0 else 0.0
            if offset < proc.on_s:
                self.t = t + proc.period_s
                return t
            # Skip to the start of the next on-window.  When the offset
            # lands within an ulp of the cycle boundary the increment
            # rounds to zero and the loop would spin forever
            # (fuzzer-found) — nudge one ulp instead.
            nxt = t + (cycle - offset)
            self.t = nxt if nxt > t else math.nextafter(t, math.inf)
        raise StopIteration


@dataclass(frozen=True)
class StreamSpec:
    """One tenant of a scenario.

    Attributes:
        model: Table I model abbreviation (or zoo model name).
        arrival: the stream's arrival process.
        qos_scale: per-stream latency-target multiplier (``inf`` disables
            deadlines; 0.8 / 1.0 / 1.2 are the paper's QoS-H/M/L).
        join_s: simulated time the tenant enters the system.
        leave_s: time the tenant leaves (``None`` = stays to the end).
            Departure is preemptive: an in-flight inference is aborted
            and its cores and cache pages are released immediately.
        inferences: measured count quota (count-mode scenarios).  Open-
            loop streams stop offering arrivals once the quota (plus
            warmup) is reached.
        warmup_inferences: leading inferences excluded from metrics in
            count mode (steady-state scenarios use the window instead).
    """

    model: str
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    qos_scale: float = math.inf
    join_s: float = 0.0
    leave_s: Optional[float] = None
    inferences: Optional[int] = None
    warmup_inferences: int = 0

    def __post_init__(self) -> None:
        if not self.model:
            raise WorkloadError("stream needs a model key")
        if self.join_s < 0:
            raise WorkloadError("join_s cannot be negative")
        if self.leave_s is not None and self.leave_s <= self.join_s:
            raise WorkloadError("leave_s must be after join_s")
        if self.inferences is not None and self.inferences <= 0:
            raise WorkloadError("inferences must be positive when set")
        if self.warmup_inferences < 0:
            raise WorkloadError("warmup cannot be negative")

    @property
    def quota(self) -> Optional[int]:
        """Total dispatch cap (measured + warmup), or ``None``."""
        if self.inferences is None:
            return None
        return self.inferences + self.warmup_inferences

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "arrival": self.arrival.to_dict(),
            "qos_scale": self.qos_scale,
            "join_s": self.join_s,
            "leave_s": self.leave_s,
            "inferences": self.inferences,
            "warmup_inferences": self.warmup_inferences,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamSpec":
        data = dict(data)
        if "arrival" not in data:
            raise WorkloadError("stream spec is missing 'arrival'")
        data["arrival"] = ArrivalProcess.from_dict(data["arrival"])
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete multi-tenant scenario.

    Attributes:
        streams: the tenant set (one :class:`StreamSpec` each).
        duration_s: steady-state measurement window end.  ``None``
            selects count mode, where every stream needs an
            ``inferences`` quota.
        warmup_s: measurement start inside the window (steady-state).
    """

    streams: Tuple[StreamSpec, ...]
    duration_s: Optional[float] = None
    warmup_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.streams:
            raise WorkloadError("scenario needs at least one stream")
        object.__setattr__(self, "streams", tuple(self.streams))
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise WorkloadError("duration must be positive")
            if not 0 <= self.warmup_s < self.duration_s:
                raise WorkloadError("warmup must precede the window end")
        else:
            for i, stream in enumerate(self.streams):
                if stream.quota is None:
                    raise WorkloadError(
                        f"stream {i} ({stream.model}): count-mode "
                        f"scenarios need an inferences quota per stream"
                    )
        for i, stream in enumerate(self.streams):
            if self.duration_s is not None and \
                    stream.join_s >= self.duration_s:
                raise WorkloadError(
                    f"stream {i} ({stream.model}): joins at "
                    f"{stream.join_s} s, after the window ends"
                )

    # ------------------------------------------------------------------

    @property
    def num_streams(self) -> int:
        return len(self.streams)

    @property
    def model_keys(self) -> Tuple[str, ...]:
        """One model key per stream, in stream order."""
        return tuple(s.model for s in self.streams)

    @property
    def has_dynamics(self) -> bool:
        """True when the scenario needs the engine's timeline (open-loop
        arrivals or mid-run joins/leaves)."""
        return any(
            s.arrival.is_open_loop or s.join_s > 0 or s.leave_s is not None
            for s in self.streams
        )

    def scaled(self, factor: float) -> "ScenarioSpec":
        """Scale the measurement window (and tenant join/leave times) by
        ``factor``, leaving arrival processes untouched.

        This mirrors :class:`~repro.experiments.common.ExperimentScale`:
        a smaller factor shrinks the simulated window (fewer samples at
        the same offered load), keeping churn events proportionally
        placed inside it.
        """
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        if factor == 1.0:
            return self
        streams = tuple(
            replace(
                s,
                join_s=s.join_s * factor,
                leave_s=None if s.leave_s is None else s.leave_s * factor,
            )
            for s in self.streams
        )
        return ScenarioSpec(
            streams=streams,
            duration_s=(
                None if self.duration_s is None
                else self.duration_s * factor
            ),
            warmup_s=self.warmup_s * factor,
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready form; round-trips exactly through
        :meth:`from_dict` (float reprs are exact, ``inf`` survives)."""
        return {
            "scenario_schema_version": SCENARIO_SCHEMA_VERSION,
            "streams": [s.to_dict() for s in self.streams],
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        version = data.get("scenario_schema_version")
        if version != SCENARIO_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported scenario schema {version!r} "
                f"(expected {SCENARIO_SCHEMA_VERSION})"
            )
        return cls(
            streams=tuple(
                StreamSpec.from_dict(s) for s in data["streams"]
            ),
            duration_s=data["duration_s"],
            warmup_s=data["warmup_s"],
        )

    # ------------------------------------------------------------------

    @classmethod
    def closed_loop(cls, model_keys: Sequence[str],
                    duration_s: Optional[float] = None,
                    warmup_s: float = 0.0,
                    inferences: Optional[int] = 3,
                    warmup_inferences: int = 0,
                    qos_scale: float = math.inf) -> "ScenarioSpec":
        """The paper's workload shape as a scenario (one closed-loop
        stream per model key, all present from t=0)."""
        if duration_s is not None:
            inferences = None
            warmup_inferences = 0
        return cls(
            streams=tuple(
                StreamSpec(
                    model=key,
                    qos_scale=qos_scale,
                    inferences=inferences,
                    warmup_inferences=warmup_inferences,
                )
                for key in model_keys
            ),
            duration_s=duration_s,
            warmup_s=warmup_s,
        )


# ----------------------------------------------------------------------
# Named scenario registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Tuple[ScenarioSpec, str]] = {}


def register_scenario(name: str, spec: ScenarioSpec,
                      description: str = "") -> ScenarioSpec:
    """Register (or replace) a named scenario; returns the spec."""
    if not name:
        raise WorkloadError("scenario name cannot be empty")
    _REGISTRY[name] = (spec, description)
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a named scenario up.

    Raises:
        WorkloadError: the name is not registered.
    """
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_registry() -> Dict[str, Tuple[ScenarioSpec, str]]:
    """Snapshot of the registry: ``name -> (spec, description)``."""
    return dict(_REGISTRY)


def _register_builtins() -> None:
    """Curated scenarios covering every arrival process and churn."""
    vision = ("RS.", "MB.", "EF.", "VT.")
    suite = ("RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.", "PP.")

    register_scenario(
        "steady-quad",
        ScenarioSpec.closed_loop(vision, duration_s=0.4, warmup_s=0.08),
        "4 closed-loop vision tenants, steady-state window",
    )
    register_scenario(
        "steady-eight",
        ScenarioSpec.closed_loop(suite, duration_s=0.4, warmup_s=0.08),
        "all 8 benchmark models closed-loop, steady-state window",
    )
    register_scenario(
        "periodic-eight",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    arrival=ArrivalProcess.periodic(
                        period_s=0.012, phase_s=0.0015 * i
                    ),
                )
                for i, key in enumerate(suite)
            ),
            duration_s=0.4,
            warmup_s=0.08,
        ),
        "8 open-loop periodic tenants with staggered phases",
    )
    register_scenario(
        "poisson-eight",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    arrival=ArrivalProcess.poisson(rate_hz=80.0,
                                                   seed=2025 + i),
                )
                for i, key in enumerate(suite)
            ),
            duration_s=0.4,
            warmup_s=0.08,
        ),
        "8 seeded-Poisson tenants at 80 Hz each",
    )
    register_scenario(
        "bursty-quad",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    arrival=ArrivalProcess.bursty(
                        period_s=0.004, on_s=0.06, off_s=0.06,
                        phase_s=0.03 * i,
                    ),
                )
                for i, key in enumerate(vision)
            ),
            duration_s=0.4,
            warmup_s=0.08,
        ),
        "4 bursty on/off tenants with interleaved bursts",
    )
    register_scenario(
        "mmpp-quad",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    arrival=ArrivalProcess.mmpp(
                        rates_hz=(30.0, 240.0),
                        sojourn_s=(0.06, 0.02),
                        seed=2025 + i,
                    ),
                )
                for i, key in enumerate(vision)
            ),
            duration_s=0.4,
            warmup_s=0.08,
        ),
        "4 MMPP tenants alternating calm (30 Hz) and surge (240 Hz) "
        "states",
    )
    register_scenario(
        "diurnal-flash",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    arrival=ArrivalProcess.diurnal(
                        rate_hz=70.0, period_s=0.2, amplitude=0.6,
                        phase_s=0.05 * i,
                        flash_every_s=0.13, flash_width_s=0.02,
                        flash_boost=3.0, seed=2025 + i,
                    ),
                )
                for i, key in enumerate(vision)
            ),
            duration_s=0.4,
            warmup_s=0.08,
        ),
        "4 diurnal tenants (sinusoidal rate) with recurring 3x flash "
        "crowds",
    )
    # Churn: half the tenants are permanent closed-loop residents, half
    # join and leave mid-run, overlapping so departures free pages while
    # survivors can grow into them.
    churn_streams = [
        StreamSpec(model=key) for key in vision
    ] + [
        StreamSpec(
            model=key,
            join_s=0.04 + 0.05 * i,
            leave_s=0.22 + 0.05 * i,
        )
        for i, key in enumerate(("BE.", "GN.", "WV.", "PP."))
    ]
    register_scenario(
        "churn-eight",
        ScenarioSpec(
            streams=tuple(churn_streams), duration_s=0.4, warmup_s=0.08
        ),
        "4 resident + 4 churning tenants (staggered join/leave)",
    )
    register_scenario(
        "churn-heavy",
        ScenarioSpec(
            streams=tuple(
                StreamSpec(
                    model=key,
                    join_s=0.03 * i,
                    leave_s=0.03 * i + 0.16,
                )
                for i, key in enumerate(suite)
            ),
            duration_s=0.4,
            warmup_s=0.0,
        ),
        "8 tenants all churning (rolling join/leave waves)",
    )


_register_builtins()
