"""Metrics collection: per-inference records and per-model summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from .task import TaskInstance


@dataclass(frozen=True)
class InstanceRecord:
    """Immutable record of one measured inference."""

    instance_id: str
    stream_id: str
    model_abbr: str
    arrival_time: float
    start_time: float
    finish_time: float
    latency_s: float
    dram_bytes: float
    hit_bytes: float
    access_bytes: float
    qos_target_s: float
    met_deadline: bool


@dataclass
class ModelSummary:
    """Aggregated statistics of one model across measured inferences."""

    model_abbr: str
    inferences: int
    avg_latency_s: float
    avg_dram_bytes: float
    hit_rate: float
    sla_rate: float

    @property
    def avg_latency_ms(self) -> float:
        return self.avg_latency_s * 1e3

    @property
    def avg_dram_mb(self) -> float:
        return self.avg_dram_bytes / 1e6


@dataclass
class MetricsCollector:
    """Accumulates finished instances and derives summaries."""

    records: List[InstanceRecord] = field(default_factory=list)

    def record(self, instance: TaskInstance) -> InstanceRecord:
        if instance.finish_time is None or instance.start_time is None:
            raise SimulationError(
                f"{instance.instance_id} recorded before finishing"
            )
        rec = InstanceRecord(
            instance_id=instance.instance_id,
            stream_id=instance.stream_id,
            model_abbr=instance.graph.abbr,
            arrival_time=instance.arrival_time,
            start_time=instance.start_time,
            finish_time=instance.finish_time,
            latency_s=instance.latency,
            dram_bytes=instance.dram_bytes_total,
            hit_bytes=instance.hit_bytes_total,
            access_bytes=instance.access_bytes_total,
            qos_target_s=instance.qos_target_s,
            met_deadline=instance.met_deadline(),
        )
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------

    @property
    def num_inferences(self) -> int:
        return len(self.records)

    def avg_latency_s(self) -> float:
        """Mean dispatch-to-finish latency over all measured inferences."""
        if not self.records:
            raise SimulationError("no measured inferences")
        return sum(r.latency_s for r in self.records) / len(self.records)

    def avg_dram_bytes_per_inference(self) -> float:
        """Mean memory access per model inference (Figure 2(b) metric)."""
        if not self.records:
            raise SimulationError("no measured inferences")
        return sum(r.dram_bytes for r in self.records) / len(self.records)

    def avg_queue_delay_s(self) -> float:
        """Mean dispatch-to-start delay (time an inference waited for a
        core or, open-loop, behind its stream's previous inference)."""
        if not self.records:
            raise SimulationError("no measured inferences")
        return sum(r.start_time - r.arrival_time for r in self.records) \
            / len(self.records)

    def p99_latency_s(self) -> float:
        """99th-percentile dispatch-to-finish latency (tail metric).

        Nearest-rank percentile over all measured inferences: the smallest
        latency such that at least 99 % of records are at or below it.
        """
        if not self.records:
            raise SimulationError("no measured inferences")
        ordered = sorted(r.latency_s for r in self.records)
        rank = math.ceil(0.99 * len(ordered))
        return ordered[rank - 1]

    def qos_violation_count(self) -> int:
        """Number of measured inferences that missed their deadline."""
        return sum(1 for r in self.records if not r.met_deadline)

    def overall_hit_rate(self) -> float:
        """Aggregate cache hit rate (Figure 2(a) metric); 0 when the
        policy performs no transparent lookups."""
        accesses = sum(r.access_bytes for r in self.records)
        if accesses <= 0:
            return 0.0
        return sum(r.hit_bytes for r in self.records) / accesses

    def by_model(self) -> Dict[str, ModelSummary]:
        """Per-model summaries keyed by abbreviation."""
        groups: Dict[str, List[InstanceRecord]] = {}
        for rec in self.records:
            groups.setdefault(rec.model_abbr, []).append(rec)
        summaries: Dict[str, ModelSummary] = {}
        for abbr, recs in groups.items():
            accesses = sum(r.access_bytes for r in recs)
            summaries[abbr] = ModelSummary(
                model_abbr=abbr,
                inferences=len(recs),
                avg_latency_s=sum(r.latency_s for r in recs) / len(recs),
                avg_dram_bytes=sum(r.dram_bytes for r in recs) / len(recs),
                hit_rate=(
                    sum(r.hit_bytes for r in recs) / accesses
                    if accesses > 0 else 0.0
                ),
                sla_rate=sum(r.met_deadline for r in recs) / len(recs),
            )
        return summaries

    def model_avg_latency_s(self, abbr: str) -> Optional[float]:
        summary = self.by_model().get(abbr)
        return summary.avg_latency_s if summary else None

    # ------------------------------------------------------------------
    # Macro (model-weighted) aggregates — the paper reports per-model
    # averages, so a fast model completing many inferences must not
    # dominate the suite average.
    # ------------------------------------------------------------------

    def macro_avg_latency_s(self) -> float:
        """Mean of per-model mean latencies."""
        summaries = self.by_model()
        if not summaries:
            raise SimulationError("no measured inferences")
        return sum(s.avg_latency_s for s in summaries.values()) / \
            len(summaries)

    def macro_avg_dram_bytes(self) -> float:
        """Mean of per-model mean DRAM traffic per inference."""
        summaries = self.by_model()
        if not summaries:
            raise SimulationError("no measured inferences")
        return sum(s.avg_dram_bytes for s in summaries.values()) / \
            len(summaries)
