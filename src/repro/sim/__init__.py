"""Multi-tenant execution substrate: fluid discrete-event simulation."""

from .task import InstanceState, LayerWork, TaskInstance
from .engine import MultiTenantEngine, SimulationResult
from .faults import (
    FaultEvent,
    FaultRuntime,
    FaultSpec,
    fault_schedule_names,
    fault_schedule_registry,
    get_fault_schedule,
    register_fault_schedule,
)
from .scenario import (
    ArrivalProcess,
    ScenarioSpec,
    StreamSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_registry,
)
from .trace import (
    EventTrace,
    EventTraceRecorder,
    TraceEvent,
    TraceRecorder,
)
from .workload import (
    ClosedLoopWorkload,
    ScenarioWorkload,
    WorkloadSpec,
    random_model_mix,
)
from .snapshot import SNAPSHOT_SCHEMA_VERSION, EngineSnapshot
from .metrics import InstanceRecord, MetricsCollector, ModelSummary
from .qos import QoSReport, fairness, sla_rate, system_throughput

__all__ = [
    "InstanceState",
    "LayerWork",
    "TaskInstance",
    "MultiTenantEngine",
    "SimulationResult",
    "FaultEvent",
    "FaultRuntime",
    "FaultSpec",
    "fault_schedule_names",
    "fault_schedule_registry",
    "get_fault_schedule",
    "register_fault_schedule",
    "ArrivalProcess",
    "StreamSpec",
    "ScenarioSpec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_registry",
    "EventTrace",
    "EventTraceRecorder",
    "TraceEvent",
    "TraceRecorder",
    "ClosedLoopWorkload",
    "ScenarioWorkload",
    "WorkloadSpec",
    "random_model_mix",
    "SNAPSHOT_SCHEMA_VERSION",
    "EngineSnapshot",
    "InstanceRecord",
    "MetricsCollector",
    "ModelSummary",
    "QoSReport",
    "sla_rate",
    "system_throughput",
    "fairness",
]
