"""Declarative fault injection: hardware and tenant fault schedules.

Every scenario the registry can generate assumes a perfectly healthy
SoC; the paper's claim, though, is *adaptive* cache management — the
machinery exists for resources changing out from under the workload.
This module makes degraded hardware a first-class, reproducible
experiment input, mirroring :mod:`repro.sim.scenario`'s design: frozen
dataclasses, exact JSON round-trip, a named registry, and seeded
randomness derived purely from the spec.

* :class:`FaultEvent` — one timed fault:

  - ``"dram-degrade"``: a thermal-throttle window; DRAM bandwidth is
    multiplied by ``bw_factor`` for ``duration_s`` seconds (windows
    compose multiplicatively while they overlap).
  - ``"core-offline"``: ``cores`` NPU cores drop out of the schedulable
    set for ``duration_s`` seconds.  Instances whose cores vanish are
    preempted exactly like a departing tenant (PR 4's preemptive
    departure): pages and regions release through ``on_task_end`` and
    the stream re-offers its next inference for when capacity returns.
    ``duration_s`` is mandatory — a permanent outage could leave queued
    work undispatchable forever.
  - ``"page-retire"``: ECC-style retirement of ``pages`` SPM pages,
    selected by a string-seeded RNG over the non-retired population.
    Retirement is permanent (no ``duration_s``): the allocator
    evacuates owned pages (remap in place when a free page exists,
    shrink the owner otherwise) and never re-issues a retired pcpn.
  - ``"tenant-stall"``: the stream at ``stream_index`` (all streams
    when ``None``) stops *offering* arrivals for ``duration_s``
    seconds, then resumes.  In-flight work is not killed — a stalled
    source, not a crashed tenant.  The index is taken modulo the
    scenario's stream count so registry schedules compose with any
    scenario.

* :class:`FaultSpec` — an ordered fault timeline plus the seed that
  salts per-event RNG keys (``"page-retire:{seed}:{event}"``), so a
  schedule injects identically under any ``--jobs`` setting and on the
  native and pure-Python engine paths alike.

* :class:`FaultRuntime` — the engine-side expansion of a spec into a
  sorted onset/expiry action list with a memoized next-instant cursor;
  :class:`repro.sim.engine.MultiTenantEngine` folds it into the event
  min-dt alongside the scenario timeline heap.

A process-wide registry maps names to curated schedules
(:func:`register_fault_schedule` / :func:`get_fault_schedule`);
``python -m repro.experiments.runner --list-faults`` prints it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import WorkloadError

#: Serialization schema of fault specs; bump on field changes.
FAULT_SCHEMA_VERSION = 1

#: Fault kinds.
DRAM_DEGRADE = "dram-degrade"
CORE_OFFLINE = "core-offline"
PAGE_RETIRE = "page-retire"
TENANT_STALL = "tenant-stall"

_KINDS = (DRAM_DEGRADE, CORE_OFFLINE, PAGE_RETIRE, TENANT_STALL)

#: FaultRuntime action phases.
ONSET = 0
EXPIRY = 1


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault (see the module docstring for kind semantics).

    Attributes:
        kind: one of ``dram-degrade`` / ``core-offline`` /
            ``page-retire`` / ``tenant-stall``.
        t_s: onset instant (simulation seconds, >= 0).
        duration_s: window length.  Required for every windowed kind;
            must be ``None`` for ``page-retire`` (retirement is
            permanent).
        bw_factor: fractional DRAM-bandwidth multiplier in (0, 1]
            (``dram-degrade`` only).
        cores: number of NPU cores taken offline (``core-offline``
            only; clamped at apply time to the cores still online).
        pages: number of SPM pages to retire (``page-retire`` only;
            clamped at apply time so at least one usable page remains).
        stream_index: target stream for ``tenant-stall`` (``None`` =
            every stream; otherwise taken modulo the stream count).
    """

    kind: str
    t_s: float
    duration_s: Optional[float] = None
    bw_factor: Optional[float] = None
    cores: Optional[int] = None
    pages: Optional[int] = None
    stream_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(
                f"unknown fault kind {self.kind!r}; known: {_KINDS}"
            )
        if not (self.t_s >= 0.0):
            raise WorkloadError(f"fault t_s must be >= 0, got {self.t_s}")
        if self.duration_s is not None and not (self.duration_s > 0.0):
            raise WorkloadError(
                f"fault duration_s must be > 0, got {self.duration_s}"
            )
        if self.kind == DRAM_DEGRADE:
            if self.bw_factor is None or not (0.0 < self.bw_factor <= 1.0):
                raise WorkloadError(
                    f"{DRAM_DEGRADE} needs bw_factor in (0, 1], "
                    f"got {self.bw_factor}"
                )
            if self.duration_s is None:
                raise WorkloadError(f"{DRAM_DEGRADE} needs duration_s")
        elif self.kind == CORE_OFFLINE:
            if self.cores is None or self.cores < 1:
                raise WorkloadError(
                    f"{CORE_OFFLINE} needs cores >= 1, got {self.cores}"
                )
            if self.duration_s is None:
                raise WorkloadError(
                    f"{CORE_OFFLINE} needs duration_s (a permanent outage "
                    "could strand queued work forever)"
                )
        elif self.kind == PAGE_RETIRE:
            if self.pages is None or self.pages < 1:
                raise WorkloadError(
                    f"{PAGE_RETIRE} needs pages >= 1, got {self.pages}"
                )
            if self.duration_s is not None:
                raise WorkloadError(
                    f"{PAGE_RETIRE} is permanent; duration_s must be None"
                )
        else:  # TENANT_STALL
            if self.duration_s is None:
                raise WorkloadError(f"{TENANT_STALL} needs duration_s")
            if self.stream_index is not None and self.stream_index < 0:
                raise WorkloadError(
                    f"{TENANT_STALL} stream_index must be >= 0 or None, "
                    f"got {self.stream_index}"
                )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t_s": self.t_s,
            "duration_s": self.duration_s,
            "bw_factor": self.bw_factor,
            "cores": self.cores,
            "pages": self.pages,
            "stream_index": self.stream_index,
        }

    _FIELDS = frozenset({
        "kind", "t_s", "duration_s", "bw_factor", "cores", "pages",
        "stream_index",
    })

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        unknown = sorted(set(data) - cls._FIELDS)
        if unknown:
            raise WorkloadError(f"unknown fault-event fields: {unknown}")
        return cls(**data)


@dataclass(frozen=True)
class FaultSpec:
    """A fault timeline: events plus the seed salting per-event RNG.

    An empty spec (no events) is semantically identical to no fault
    injection at all — the engine's plumbing is exercised but every
    metric is byte-identical to a fault-free run.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 2025

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        return not self.events

    def scaled(self, factor: float) -> "FaultSpec":
        """Time-scale every onset and window by ``factor`` (matches
        :meth:`ScenarioSpec.scaled`, so sweep-cell ``scale`` stretches
        the fault timeline together with the scenario)."""
        if factor == 1.0:
            return self
        return FaultSpec(
            events=tuple(
                replace(
                    ev,
                    t_s=ev.t_s * factor,
                    duration_s=(
                        None if ev.duration_s is None
                        else ev.duration_s * factor
                    ),
                )
                for ev in self.events
            ),
            seed=self.seed,
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-ready form; round-trips exactly through
        :meth:`from_dict`."""
        return {
            "fault_schema_version": FAULT_SCHEMA_VERSION,
            "events": [ev.to_dict() for ev in self.events],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        version = data.get("fault_schema_version")
        if version != FAULT_SCHEMA_VERSION:
            raise WorkloadError(
                f"unsupported fault schema {version!r} "
                f"(expected {FAULT_SCHEMA_VERSION})"
            )
        unknown = sorted(set(data) - {"fault_schema_version", "events",
                                      "seed"})
        if unknown:
            raise WorkloadError(f"unknown fault-spec fields: {unknown}")
        return cls(
            events=tuple(FaultEvent.from_dict(ev) for ev in data["events"]),
            seed=data["seed"],
        )


class FaultRuntime:
    """Engine-side fault cursor: a spec expanded into a sorted list of
    ``(t, seq, phase, event)`` actions (onset plus, for windowed kinds,
    expiry), consumed monotonically as simulation time advances.

    ``seq`` is the event's index in the spec — it keys the engine's
    per-window bookkeeping (which bandwidth factors / offline cores are
    active) and salts per-event RNG keys, so two events with identical
    fields still inject independently and deterministically.
    """

    __slots__ = ("spec", "_actions", "_pos")

    #: Due tolerance, mirroring the workload timeline's ``_DUE_EPS``.
    _DUE_EPS = 1e-12

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        actions: List[Tuple[float, int, int, FaultEvent]] = []
        for seq, event in enumerate(spec.events):
            actions.append((event.t_s, seq, ONSET, event))
            if event.duration_s is not None:
                actions.append(
                    (event.t_s + event.duration_s, seq, EXPIRY, event)
                )
        actions.sort(key=lambda a: (a[0], a[1], a[2]))
        self._actions = actions
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._actions)

    def next_s(self) -> float:
        """Instant of the next pending action (inf when drained)."""
        if self._pos >= len(self._actions):
            return math.inf
        return self._actions[self._pos][0]

    def pop_due(self, now: float) -> List[Tuple[int, int, FaultEvent]]:
        """Pop every action due at ``now`` as ``(seq, phase, event)``."""
        due: List[Tuple[int, int, FaultEvent]] = []
        actions = self._actions
        while self._pos < len(actions):
            t, seq, phase, event = actions[self._pos]
            if t - now > self._DUE_EPS:
                break
            self._pos += 1
            due.append((seq, phase, event))
        return due


# ----------------------------------------------------------------------
# Named fault-schedule registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Tuple[FaultSpec, str]] = {}


def register_fault_schedule(name: str, spec: FaultSpec,
                            description: str = "") -> FaultSpec:
    """Register (or replace) a named fault schedule; returns the spec."""
    if not name:
        raise WorkloadError("fault-schedule name cannot be empty")
    _REGISTRY[name] = (spec, description)
    return spec


def get_fault_schedule(name: str) -> FaultSpec:
    """Look a named fault schedule up.

    Raises:
        WorkloadError: the name is not registered.
    """
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise WorkloadError(
            f"unknown fault schedule {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def fault_schedule_names() -> List[str]:
    """Registered fault-schedule names, sorted."""
    return sorted(_REGISTRY)


def fault_schedule_registry() -> Dict[str, Tuple[FaultSpec, str]]:
    """Snapshot of the registry: ``name -> (spec, description)``."""
    return dict(_REGISTRY)


def _register_builtins() -> None:
    """Curated schedules sized for the registry's 0.4 s scenarios."""
    register_fault_schedule(
        "none",
        FaultSpec(),
        "empty schedule: exercises the fault plumbing, injects nothing",
    )
    register_fault_schedule(
        "thermal-throttle",
        FaultSpec(events=(
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.10, duration_s=0.08,
                       bw_factor=0.5),
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.26, duration_s=0.06,
                       bw_factor=0.7),
        )),
        "two DRAM thermal-throttle windows (0.5x, then 0.7x bandwidth)",
    )
    register_fault_schedule(
        "core-flap",
        FaultSpec(events=(
            FaultEvent(kind=CORE_OFFLINE, t_s=0.08, duration_s=0.06,
                       cores=1),
            FaultEvent(kind=CORE_OFFLINE, t_s=0.20, duration_s=0.08,
                       cores=2),
        )),
        "NPU cores flapping offline (1 core, later 2 more)",
    )
    register_fault_schedule(
        "ecc-storm",
        FaultSpec(events=(
            FaultEvent(kind=PAGE_RETIRE, t_s=0.06, pages=8),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.14, pages=16),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.22, pages=32),
        )),
        "escalating ECC page-retirement storm (8, 16, then 32 pages)",
    )
    register_fault_schedule(
        "tenant-blackout",
        FaultSpec(events=(
            FaultEvent(kind=TENANT_STALL, t_s=0.12, duration_s=0.10,
                       stream_index=0),
            FaultEvent(kind=TENANT_STALL, t_s=0.18, duration_s=0.08,
                       stream_index=1),
        )),
        "two tenants stop offering arrivals mid-run, then recover",
    )
    register_fault_schedule(
        "degraded-soc",
        FaultSpec(events=(
            FaultEvent(kind=DRAM_DEGRADE, t_s=0.09, duration_s=0.12,
                       bw_factor=0.6),
            FaultEvent(kind=CORE_OFFLINE, t_s=0.13, duration_s=0.08,
                       cores=1),
            FaultEvent(kind=PAGE_RETIRE, t_s=0.11, pages=24),
            FaultEvent(kind=TENANT_STALL, t_s=0.16, duration_s=0.06,
                       stream_index=None),
        )),
        "everything at once: throttled DRAM, a dead core, retired "
        "pages, and a full tenant stall window",
    )


_register_builtins()
