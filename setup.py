"""Setup shim: enables `python setup.py develop` in offline environments
where pip's PEP-660 editable route is unavailable (no `wheel` package).

Lint/format configuration lives in pyproject.toml ([tool.ruff]); the
`dev` extra mirrors requirements-dev.txt for pip-based setups."""
from setuptools import setup

setup(
    extras_require={
        "dev": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
            "numpy",
            "ruff",
        ],
    },
)
