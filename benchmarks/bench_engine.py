"""Engine microbenchmark: events/sec of the kernel event loop.

A scheduler-light measurement of the event loop itself: a synthetic
8-stream workload of fixed-cost layers is driven through the engine under
two synthetic policies (a static-rate equal split and a dynamic-rate
demand split) plus the five paper policies, then two QoS rows
(``moca-qos``, ``camdn-qos``) that rerun MoCA and CaMDN(Full) with
finite deadlines so the slack-weighted/throttled fused kernels are on
the measured path.  Every configuration is run twice and the summary
metrics are asserted byte-identical before any number is reported (the
committed reference suite pins absolute values; this guards in-run
determinism).

Emits ``BENCH_engine.json``::

    {
      "meta": {...},
      "policies": {
        "<name>": {
          "kernel": {"events": N, "wall_s": t, "events_per_s": r}
        }, ...
      }
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--out BENCH_engine.json]
    python benchmarks/check_engine_regression.py  # CI guard (>30% drop)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, Optional

from repro.config import SoCConfig
from repro.core.prepared import prepare_workload
from repro.models.graph import ModelGraph
from repro.models.layers import LayerKind, LayerSpec
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulerPolicy
from repro.sim import native
from repro.sim.engine import MultiTenantEngine
from repro.sim.task import LayerWork
from repro.sim.workload import ClosedLoopWorkload, WorkloadSpec

#: Streams in the synthetic workload (all NPU cores half busy).
NUM_STREAMS = 8

#: Layers per synthetic inference; work per layer alternates between
#: compute- and memory-bound so both fluid streams gate completions.
SYNTH_LAYERS = 64

#: Inferences per stream per measured run.
SYNTH_INFERENCES = 40

#: Real-policy measured window (seconds of simulated time).
REAL_DURATION_S = 0.08

REAL_KEYS = ("RS.", "MB.", "EF.", "VT.") * 2

REAL_POLICIES = ("baseline", "moca", "aurora", "camdn-hw", "camdn-full")

#: QoS rows: same workload with finite deadlines (``QOS_SCALE`` ×
#: per-model targets), mapped to the scheduler that exercises each fused
#: slack kernel — MoCA's throttle (``slack_throttled``) only activates
#: with finite deadlines, and ``camdn-qos`` is the Figure 9 integration
#: (``slack_weighted``).
QOS_POLICIES = {"moca-qos": "moca", "camdn-qos": "camdn-qos"}
QOS_SCALE = 1.0


def synthetic_graph(layers: int = SYNTH_LAYERS) -> ModelGraph:
    """A uniform dense-layer model (no zoo, no mapper dependence)."""
    spec = [
        LayerSpec(
            name=f"dense{i}",
            kind=LayerKind.MATMUL,
            m=64, n=64, k=64,
            weight_elems=4096,
            input_elems=4096,
            output_elems=4096,
            macs=64 * 64 * 64,
        )
        for i in range(layers)
    ]
    return ModelGraph(name="SyntheticBench", abbr="SY.", layers=spec)


class StaticSynthetic(SchedulerPolicy):
    """Fixed per-layer work, equal static shares (fast-forward path).

    Per-stream work is scaled by the stream index so completions
    desynchronize — otherwise all streams finish every layer at the same
    event and the benchmark measures batch completion handling instead
    of the event loop.
    """

    name = "synthetic-static"
    dynamic_rates = False

    def __init__(self) -> None:
        super().__init__()
        self._works = {}

    def _stream_works(self, stream_id: str):
        pair = self._works.get(stream_id)
        if pair is None:
            idx = int(stream_id.rsplit("@", 1)[1])
            f = 1.0 + 0.07 * idx
            pair = (
                LayerWork(compute_cycles=40_000.0 * f,
                          dram_bytes=2_000.0 * f),
                LayerWork(compute_cycles=2_000.0 * f,
                          dram_bytes=80_000.0 * f),
            )
            self._works[stream_id] = pair
        return pair

    def begin_layer(self, instance, now):
        even, odd = self._stream_works(instance.stream_id)
        return (even if instance.layer_index % 2 == 0 else odd), 0.0


class DynamicSynthetic(StaticSynthetic):
    """Same work, demand-proportional shares recomputed every event."""

    name = "synthetic-dynamic"
    dynamic_rates = True

    def bandwidth_shares(self, running, now):
        demands = {
            iid: max(inst.rem_dram_bytes, 1.0)
            for iid, inst in running.items()
        }
        total = sum(demands.values())
        return {iid: d / total for iid, d in demands.items()}


def _build_workload(graph: Optional[ModelGraph],
                    qos_scale: float = float("inf")) -> ClosedLoopWorkload:
    if graph is None:
        spec = WorkloadSpec(model_keys=list(REAL_KEYS),
                            duration_s=REAL_DURATION_S, warmup_s=0.0,
                            qos_scale=qos_scale)
        return ClosedLoopWorkload(spec)
    # Build over a zoo placeholder key, then swap in the synthetic graph
    # (the spec validates keys against the zoo at construction).
    spec = WorkloadSpec(
        model_keys=["MB."] * NUM_STREAMS,
        inferences_per_stream=SYNTH_INFERENCES,
        warmup_inferences=0,
    )
    workload = ClosedLoopWorkload(spec)
    for stream_id in workload.streams:
        workload._graphs[stream_id] = graph
        workload._rt[stream_id].graph = graph
    return workload


def _run_once(policy_name: str, graph: Optional[ModelGraph],
              use_native: Optional[bool] = None):
    soc = SoCConfig()
    qos_scale = float("inf")
    if policy_name == "synthetic-static":
        scheduler = StaticSynthetic()
    elif policy_name == "synthetic-dynamic":
        scheduler = DynamicSynthetic()
    else:
        sched_name = QOS_POLICIES.get(policy_name, policy_name)
        if policy_name in QOS_POLICIES:
            qos_scale = QOS_SCALE
        prepare_workload(sched_name, REAL_KEYS, soc)
        scheduler = make_scheduler(sched_name)
    engine = MultiTenantEngine(
        soc, scheduler, _build_workload(graph, qos_scale=qos_scale),
        use_native=use_native,
    )
    return engine.run()


def bench_policy(policy_name: str, repeats: int = 3,
                 use_native: Optional[bool] = None) -> Dict:
    """Best-of-N kernel runs; asserts run-to-run byte-identity."""
    graph = synthetic_graph() if policy_name.startswith("synthetic") \
        else None
    best = None
    result = None
    summaries = set()
    for _ in range(max(repeats, 2)):
        start = time.perf_counter()
        result = _run_once(policy_name, graph, use_native=use_native)
        wall = time.perf_counter() - start
        summaries.add(
            json.dumps(result.metric_summary(), sort_keys=True)
        )
        if best is None or wall < best:
            best = wall
    if len(summaries) != 1:
        raise AssertionError(
            f"{policy_name}: repeated engine runs diverge"
        )
    return {
        "kernel": {
            "events": result.events_processed,
            "wall_s": best,
            "events_per_s": result.events_processed / best,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best is kept)")
    parser.add_argument("--no-native", action="store_true",
                        help="force the pure-Python step paths "
                             "(A/B against the fused native kernel)")
    args = parser.parse_args(argv)

    use_native = False if args.no_native else None
    if args.no_native:
        native_note = "disabled by --no-native"
    else:
        native.fused_step()          # trigger the load outside timing
        native_note = native.native_status()
    policies = ("synthetic-static", "synthetic-dynamic") \
        + REAL_POLICIES + tuple(QOS_POLICIES)
    report = {
        "meta": {
            "streams": NUM_STREAMS,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "native": native_note,
        },
        "policies": {},
    }
    for name in policies:
        entry = bench_policy(name, repeats=args.repeats,
                             use_native=use_native)
        report["policies"][name] = entry
        print(
            f"{name:<18} kernel {entry['kernel']['events_per_s']:>12,.0f}"
            f" ev/s  ({entry['kernel']['events']:,} events)"
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
