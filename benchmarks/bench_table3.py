"""Benchmark: regenerate Table III (area breakdown)."""

from __future__ import annotations

import pytest

from repro.experiments.table3_area import (
    PAPER_TABLE3,
    format_table3,
    run_table3,
)


@pytest.mark.benchmark(group="table3")
def test_table3_area(benchmark):
    table = benchmark(run_table3)
    print()
    print(format_table3(table))

    flat = {name: (area, pct)
            for rows in table.values() for name, area, pct in rows}
    for component, (paper_area, paper_pct) in PAPER_TABLE3.items():
        area, pct = flat[component]
        assert area == pytest.approx(paper_area, rel=0.15), component
        assert pct == pytest.approx(paper_pct, abs=0.5), component
