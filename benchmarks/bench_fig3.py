"""Benchmark: regenerate Figure 3 (reuse counts and distances)."""

from __future__ import annotations

import pytest

from repro.experiments.fig3_reuse import format_fig3, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_reuse(benchmark):
    rows = benchmark(run_fig3)
    print()
    print(format_fig3(rows))

    avg = rows[-1]
    # Paper: 68.0 % of data with reuse count 1.
    assert 0.4 <= avg.count_fractions["1"] <= 0.9
    # Paper: 61.8 % of intermediate data above 1 MB reuse distance.
    assert 1.0 - avg.distance_fractions["(0MB,1MB]"] >= 0.35
    # Paper: 47.9 % above 2 MB.
    above_2mb = (
        avg.distance_fractions["(2MB,4MB]"]
        + avg.distance_fractions["(4MB,inf)"]
    )
    assert above_2mb >= 0.25
