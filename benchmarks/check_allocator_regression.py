"""CI guard: fail if CaMDN allocator ops/sec regressed vs. the committed
baseline.

Compares a fresh ``BENCH_allocator.json`` (produced by
``bench_allocator.py``) against ``benchmarks/BENCH_allocator.baseline.json``.
A scenario fails when its begin+finish ops/sec drops more than the
tolerance (default 30 %) below the baseline value.

Absolute ops/sec varies across runner hardware, so the committed baseline
should be refreshed when the fleet changes; tune with ``--tolerance`` or
the ``REPRO_BENCH_TOLERANCE`` environment variable (fraction, e.g.
``0.5`` to allow a 50 % drop on slow shared runners).

Usage::

    PYTHONPATH=src python benchmarks/bench_allocator.py
    python benchmarks/check_allocator_regression.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_allocator.baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_allocator.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional ops/sec drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())["scenarios"]
    baseline = json.loads(Path(args.baseline).read_text())["scenarios"]

    failures = []
    for scenario, base_entry in sorted(baseline.items()):
        cur_entry = current.get(scenario)
        if cur_entry is None:
            failures.append(f"{scenario}: missing from current run")
            continue
        base_rate = base_entry["ops_per_s"]
        cur_rate = cur_entry["ops_per_s"]
        floor = (1.0 - args.tolerance) * base_rate
        status = "ok" if cur_rate >= floor else "REGRESSED"
        print(
            f"{scenario:<12} baseline {base_rate:>12,.0f} ops/s   "
            f"current {cur_rate:>12,.0f} ops/s   floor "
            f"{floor:>12,.0f}   {status}"
        )
        if cur_rate < floor:
            failures.append(
                f"{scenario}: {cur_rate:,.0f} ops/s < floor "
                f"{floor:,.0f} (baseline {base_rate:,.0f})"
            )
    if failures:
        print("\nallocator throughput regression detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nallocator throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
