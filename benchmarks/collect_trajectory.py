"""Combine the bench campaign outputs into one trajectory document.

The nightly workflow runs every benchmark (engine, scenario, allocator)
and uploads a single ``BENCH_trajectory.json`` so the perf table in
ROADMAP.md has a longitudinal data source: each artifact is one dated
point with the commit it measured.

Besides the JSON artifact, the collector prints a ready-to-paste
markdown row for the "Perf trajectory" table in ROADMAP.md
(``--roadmap-label`` names the milestone column): refreshing the table
from a nightly artifact is copy one line, not transcribe nine numbers.
``--row-from FILE`` re-emits the row from an existing trajectory
artifact without rerunning anything.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_scenario.py
    PYTHONPATH=src python benchmarks/bench_allocator.py
    python benchmarks/collect_trajectory.py --out BENCH_trajectory.json
    python benchmarks/collect_trajectory.py --row-from BENCH_trajectory.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
from pathlib import Path

from check_regression import MANIFEST


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except Exception:
        return "unknown"


def roadmap_row(doc: dict, label: str = "next") -> str:
    """One ROADMAP "Perf trajectory" markdown row from a trajectory doc.

    Columns match the committed table: milestone (label, capture date,
    short commit), tier-1 wall time (left to fill in — the bench
    campaign doesn't run the test suite), and per-row engine/scenario
    throughput notes.
    """
    meta = doc.get("meta", {})
    date = str(meta.get("captured_utc", ""))[:10]
    commit = str(meta.get("commit", "unknown"))[:9]
    parts = []
    for bench in ("engine", "scenario"):
        policies = doc.get("benches", {}).get(bench, {}) \
            .get("policies", {})
        rows = ", ".join(
            f"{name} {policies[name]['kernel']['events_per_s'] / 1e3:.0f}k"
            for name in sorted(policies)
        )
        if rows:
            parts.append(f"{bench}: {rows} ev/s")
    notes = "; ".join(parts) if parts else "no bench outputs in doc"
    milestone = f"{label} ({date}, {commit})" if date else \
        f"{label} ({commit})"
    return f"| {milestone} | (tier-1 wall: fill in) | {notes} |"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument(
        "--current-dir", default=".",
        help="directory holding the fresh BENCH_*.json outputs",
    )
    parser.add_argument(
        "--roadmap-label", default="next",
        help="milestone label for the printed ROADMAP table row",
    )
    parser.add_argument(
        "--row-from", metavar="FILE", default=None,
        help="print the ROADMAP row for an existing trajectory "
             "artifact and exit (no fresh outputs needed)",
    )
    args = parser.parse_args(argv)

    if args.row_from is not None:
        doc = json.loads(Path(args.row_from).read_text())
        print(roadmap_row(doc, label=args.roadmap_label))
        return 0

    current_dir = Path(args.current_dir)
    doc = {
        "meta": {
            "captured_utc": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "commit": _git_head(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": {},
    }
    missing = []
    for name, spec in MANIFEST.items():
        path = current_dir / spec.current
        if not path.exists():
            missing.append(f"{name}: {path}")
            continue
        doc["benches"][name] = json.loads(path.read_text())
    if missing:
        print("missing bench outputs:", file=sys.stderr)
        for entry in missing:
            print(f"  - {entry}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"wrote {args.out} ({len(doc['benches'])} benches)")
    print("ROADMAP perf-table row:")
    print(roadmap_row(doc, label=args.roadmap_label))
    return 0


if __name__ == "__main__":
    sys.exit(main())
