"""Combine the bench campaign outputs into one trajectory document.

The nightly workflow runs every benchmark (engine, scenario, allocator)
and uploads a single ``BENCH_trajectory.json`` so the perf table in
ROADMAP.md has a longitudinal data source: each artifact is one dated
point with the commit it measured.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_scenario.py
    PYTHONPATH=src python benchmarks/bench_allocator.py
    python benchmarks/collect_trajectory.py --out BENCH_trajectory.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
from pathlib import Path

from check_regression import MANIFEST


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
            cwd=Path(__file__).parent,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument(
        "--current-dir", default=".",
        help="directory holding the fresh BENCH_*.json outputs",
    )
    args = parser.parse_args(argv)

    current_dir = Path(args.current_dir)
    doc = {
        "meta": {
            "captured_utc": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "commit": _git_head(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": {},
    }
    missing = []
    for name, spec in MANIFEST.items():
        path = current_dir / spec.current
        if not path.exists():
            missing.append(f"{name}: {path}")
            continue
        doc["benches"][name] = json.loads(path.read_text())
    if missing:
        print("missing bench outputs:", file=sys.stderr)
        for entry in missing:
            print(f"  - {entry}", file=sys.stderr)
        return 1
    Path(args.out).write_text(json.dumps(doc, indent=1, sort_keys=True))
    print(f"wrote {args.out} ({len(doc['benches'])} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
