"""CI guard: fail when a benchmark regressed vs. its committed baseline.

One manifest-driven checker replaces the former per-bench
``check_{engine,scenario,allocator}_regression.py`` triplet.  Each
manifest entry names the fresh output file a bench writes, the committed
baseline it is compared against, and where the throughput number lives
in the JSON; a row fails when its rate drops more than the tolerance
(default 30 %) below the baseline.

Absolute rates vary across runner hardware, so the committed baselines
should be refreshed when the fleet changes; tune with ``--tolerance`` or
the ``REPRO_BENCH_TOLERANCE`` environment variable (fraction, e.g.
``0.5`` to allow a 50 % drop on slow shared runners — CI sets a deeper
tolerance on pull requests than on ``main``).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    python benchmarks/check_regression.py engine

    # or check every bench whose output file is present next to cwd:
    python benchmarks/check_regression.py engine scenario allocator
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple, Tuple

BASELINE_DIR = Path(__file__).parent

DEFAULT_TOLERANCE = 0.30


class BenchSpec(NamedTuple):
    """Where one benchmark's numbers live.

    ``section`` is the top-level JSON key holding the row mapping;
    ``rate_path`` walks from a row to its throughput float; ``unit`` is
    cosmetic.
    """

    current: str
    baseline: str
    section: str
    rate_path: Tuple[str, ...]
    unit: str


MANIFEST: Dict[str, BenchSpec] = {
    "engine": BenchSpec(
        current="BENCH_engine.json",
        baseline="BENCH_engine.baseline.json",
        section="policies",
        rate_path=("kernel", "events_per_s"),
        unit="ev/s",
    ),
    "scenario": BenchSpec(
        current="BENCH_scenario.json",
        baseline="BENCH_scenario.baseline.json",
        section="policies",
        rate_path=("kernel", "events_per_s"),
        unit="ev/s",
    ),
    "allocator": BenchSpec(
        current="BENCH_allocator.json",
        baseline="BENCH_allocator.baseline.json",
        section="scenarios",
        rate_path=("ops_per_s",),
        unit="ops/s",
    ),
    "fleet": BenchSpec(
        current="BENCH_fleet.json",
        baseline="BENCH_fleet.baseline.json",
        section="fleets",
        rate_path=("kernel", "events_per_s"),
        unit="ev/s",
    ),
}


def resolve_tolerance(arg: float | None) -> float:
    """CLI flag beats the environment beats the default."""
    if arg is not None:
        return arg
    env = os.environ.get("REPRO_BENCH_TOLERANCE")
    if env is None:
        return DEFAULT_TOLERANCE
    try:
        return float(env)
    except ValueError:
        raise SystemExit(
            f"REPRO_BENCH_TOLERANCE={env!r} is not a number"
        ) from None


def _rate(entry: dict, path: Tuple[str, ...]) -> float:
    value = entry
    for key in path:
        value = value[key]
    return float(value)


def _load(path: Path, role: str) -> dict:
    if not path.exists():
        raise SystemExit(f"{role} file missing: {path}")
    try:
        return json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SystemExit(f"{role} file malformed: {path}: {exc}") from None


def check_bench(name: str, tolerance: float,
                current_dir: Path = Path("."),
                baseline_dir: Path = BASELINE_DIR) -> List[str]:
    """Compare one bench's fresh output to its baseline.

    Returns the list of failure descriptions (empty: within tolerance).
    A missing or malformed file, or an unknown bench name, exits with an
    error — silently passing on absent output would make the gate
    vacuous.
    """
    try:
        spec = MANIFEST[name]
    except KeyError:
        raise SystemExit(
            f"unknown bench {name!r}; known: {sorted(MANIFEST)}"
        ) from None
    current_doc = _load(current_dir / spec.current, f"{name} current")
    baseline_doc = _load(baseline_dir / spec.baseline,
                         f"{name} baseline")
    try:
        current = current_doc[spec.section]
        baseline = baseline_doc[spec.section]
    except (KeyError, TypeError):
        raise SystemExit(
            f"{name}: missing {spec.section!r} section in bench JSON"
        ) from None

    failures: List[str] = []
    width = max((len(k) for k in baseline), default=10) + 2
    for row, base_entry in sorted(baseline.items()):
        cur_entry = current.get(row)
        if cur_entry is None:
            failures.append(f"{name}/{row}: missing from current run")
            continue
        try:
            base_rate = _rate(base_entry, spec.rate_path)
            cur_rate = _rate(cur_entry, spec.rate_path)
        except (KeyError, TypeError, ValueError):
            failures.append(f"{name}/{row}: malformed rate entry")
            continue
        floor = (1.0 - tolerance) * base_rate
        status = "ok" if cur_rate >= floor else "REGRESSED"
        print(
            f"{row:<{width}} baseline {base_rate:>12,.0f} {spec.unit}   "
            f"current {cur_rate:>12,.0f} {spec.unit}   floor "
            f"{floor:>12,.0f}   {status}"
        )
        if cur_rate < floor:
            failures.append(
                f"{name}/{row}: {cur_rate:,.0f} {spec.unit} < floor "
                f"{floor:,.0f} (baseline {base_rate:,.0f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benches", nargs="*", default=list(MANIFEST),
        help=f"benches to check (default: all of {sorted(MANIFEST)})",
    )
    parser.add_argument(
        "--current-dir", default=".",
        help="directory holding the fresh BENCH_*.json outputs",
    )
    parser.add_argument(
        "--baseline-dir", default=str(BASELINE_DIR),
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fractional rate drop (default: "
             f"$REPRO_BENCH_TOLERANCE or {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    tolerance = resolve_tolerance(args.tolerance)

    failures: List[str] = []
    for name in args.benches or list(MANIFEST):
        print(f"== {name} (tolerance {tolerance:.0%}) ==")
        failures.extend(
            check_bench(name, tolerance,
                        current_dir=Path(args.current_dir),
                        baseline_dir=Path(args.baseline_dir))
        )
        print()
    if failures:
        print("benchmark regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
