"""Benchmark: CPU co-run way-partition tradeoff (future-work study)."""

from __future__ import annotations

import pytest

from repro.experiments.cpu_corun import format_corun, run_cpu_corun_study


@pytest.mark.benchmark(group="corun")
def test_cpu_corun_tradeoff(benchmark):
    rows = benchmark.pedantic(
        run_cpu_corun_study,
        kwargs={
            "npu_way_options": (8, 12, 14),
            "accesses_per_program": 10_000,
            "scale": 0.15,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_corun(rows))

    # More NPU ways must not slow the DNNs down.
    latencies = [r.dnn_latency_ms for r in rows]
    assert latencies[0] >= latencies[-1] - 0.5
    # Every row reports all CPU programs.
    for row in rows:
        assert len(row.cpu_hit_rates) == 3
