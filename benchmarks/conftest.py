"""Benchmark fixtures.

The offline mapping phase is deterministic and process-memoized; warming it
once keeps pytest-benchmark iterations measuring the experiment itself
rather than first-call mapping."""

from __future__ import annotations

import pytest

from repro.config import MiB, SoCConfig
from repro.core.mapper.layer_mapper import LayerMapper
from repro.models.zoo import load_benchmark_suite


@pytest.fixture(scope="session", autouse=True)
def warm_mapping_cache():
    """Pre-map every benchmark model for the cache sizes the benches use."""
    for cache_mb in (4, 16, 64):
        mapper = LayerMapper(SoCConfig().with_cache_bytes(cache_mb * MiB))
        for graph in load_benchmark_suite():
            mapper.map_model(graph)
