"""Benchmark: regenerate Figure 8 (latency/memory-access scaling)."""

from __future__ import annotations

import pytest

from repro.experiments.fig8_scaling import format_fig8, run_fig8

_DNN_COUNTS = (1, 8, 16)
_CACHE_SIZES = (4, 16, 64)


@pytest.mark.benchmark(group="fig8")
def test_fig8_scaling(benchmark):
    rows = benchmark.pedantic(
        run_fig8,
        kwargs={
            "dnn_counts": _DNN_COUNTS,
            "cache_sizes_mb": _CACHE_SIZES,
            "scale": 0.15,
        },
        iterations=1,
        rounds=1,
    )
    print()
    print(format_fig8(rows))

    multi = [r for r in rows if r.num_dnns > 1]
    # Paper: 34.3-42.3 % latency and 16.0-37.7 % memory reductions in
    # multi-tenant cells; we assert the direction and rough magnitude.
    assert all(r.dram_reduction > 0.0 for r in multi)
    assert sum(r.latency_reduction for r in multi) / len(multi) > 0.1
