"""Benchmark: regenerate Figure 7 (model-wise speedup over AuRORA)."""

from __future__ import annotations

import pytest

from repro.experiments.fig7_speedup import format_fig7, run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_speedup(benchmark):
    rows = benchmark.pedantic(
        run_fig7, kwargs={"scale": 0.25}, iterations=1, rounds=1
    )
    print()
    print(format_fig7(rows))

    avg_full = sum(r.full_speedup for r in rows) / len(rows)
    avg_hw = sum(r.hw_only_speedup for r in rows) / len(rows)
    max_full = max(r.full_speedup for r in rows)

    # Paper shape: Full averages 1.88x (up to 2.56x); HW-only sits between
    # the baseline and Full.
    assert avg_full > 1.2
    assert max_full > 1.5
    assert avg_full > avg_hw
    # The intermediate-data-heavy depth-wise models benefit most.
    by_model = {r.model: r.full_speedup for r in rows}
    assert max(by_model["MB."], by_model["EF."]) >= max_full * 0.8
