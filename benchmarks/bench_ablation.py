"""Benchmarks: ablations of CaMDN's design choices (see DESIGN.md)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    format_ablation,
    multicast_traffic_savings,
    run_lbm_budget_ablation,
    run_usage_level_ablation,
    run_way_partition_ablation,
)


@pytest.mark.benchmark(group="ablation")
def test_way_partition_ablation(benchmark):
    rows = benchmark.pedantic(
        run_way_partition_ablation,
        kwargs={"npu_way_options": (4, 12, 16), "scale": 0.2},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_ablation(rows, "NPU way-partition share"))
    by_ways = {r.value: r for r in rows}
    # More NPU ways -> more pages -> at least as much LBM coverage.
    assert by_ways["16/16"].lbm_layers >= by_ways["4/16"].lbm_layers


@pytest.mark.benchmark(group="ablation")
def test_usage_level_granularity(benchmark):
    rows = benchmark.pedantic(
        run_usage_level_ablation,
        kwargs={"granularities": (1, 4), "scale": 0.2},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_ablation(rows, "cache-usage level granularity"))
    assert len(rows) == 2
    for row in rows:
        assert row.avg_latency_ms > 0


@pytest.mark.benchmark(group="ablation")
def test_lbm_budget_ablation(benchmark):
    rows = benchmark.pedantic(
        run_lbm_budget_ablation,
        kwargs={"fractions": (0.05, 0.25), "scale": 0.2},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_ablation(rows, "LBM occupancy budget"))
    small, big = rows
    # The knob must move block shapes: under contention, a smaller budget
    # yields shorter blocks whose page requests are granted more often, so
    # LBM coverage responds (typically upward for the 5 % budget).
    assert small.lbm_layers > 0 and big.lbm_layers > 0
    assert small.lbm_layers != big.lbm_layers


@pytest.mark.benchmark(group="ablation")
def test_multicast_savings(benchmark):
    savings = benchmark(multicast_traffic_savings, num_cores=2)
    print()
    print("Multicast weight-traffic savings at 2 cores:")
    for model, row in savings.items():
        print(
            f"  {model:<5} replicated={row['replicated_mb']:7.1f} MB  "
            f"multicast={row['multicast_mb']:7.1f} MB  "
            f"saved={row['saved_fraction']:.1%}"
        )
    for row in savings.values():
        assert row["saved_fraction"] > 0.15
