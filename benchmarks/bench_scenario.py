"""Scenario-engine benchmark: events/sec under dynamic tenancy.

Measures the engine's throughput on the scenario axes the closed-loop
microbenchmark (``bench_engine.py``) cannot exercise: churn-heavy
tenant join/leave waves and open-loop seeded-Poisson arrivals, each
under the unmanaged baseline, CaMDN(Full), AuRORA and the CaMDN-QoS
integration (the last two ride the fused slack-weighted kernel, so
churn also exercises the engine's slack SoA add/remove path).  The
timeline machinery
(admission queue, preemptive departures, backlog dispatch) rides the
per-event hot path, so a regression here means dynamic scenarios got
slower even if the closed-loop bench stayed flat.

Every configuration is run twice and asserted byte-identical before any
number is reported (scenario runs are deterministic by construction,
seeded Poisson included).

Emits ``BENCH_scenario.json`` in the same shape as the engine bench::

    {
      "meta": {...},
      "policies": {
        "<policy>/<scenario>": {
          "kernel": {"events": N, "wall_s": t, "events_per_s": r}
        }, ...
      }
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_scenario.py [--out BENCH_scenario.json]
    python benchmarks/check_scenario_regression.py  # CI guard (>30% drop)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict

from repro.experiments.common import run_scenario
from repro.sim.scenario import get_scenario

#: (policy, registry scenario) grid; the 0.5 scale keeps one measured
#: run under a second per cell while preserving every churn event.
SCENARIOS = ("churn-heavy", "poisson-eight")
POLICIES = ("baseline", "camdn-full", "aurora", "camdn-qos")
SCALE = 0.5


def bench_cell(policy: str, scenario_name: str,
               repeats: int = 3) -> Dict:
    """Best-of-N scenario runs; asserts run-to-run byte-identity."""
    spec = get_scenario(scenario_name).scaled(SCALE)
    best = None
    result = None
    summaries = set()
    for _ in range(max(repeats, 2)):
        start = time.perf_counter()
        result = run_scenario(spec, policy=policy)
        wall = time.perf_counter() - start
        summaries.add(
            json.dumps(result.metric_summary(), sort_keys=True)
        )
        if best is None or wall < best:
            best = wall
    if len(summaries) != 1:
        raise AssertionError(
            f"{policy}/{scenario_name}: repeated scenario runs diverge"
        )
    return {
        "kernel": {
            "events": result.events_processed,
            "wall_s": best,
            "events_per_s": result.events_processed / best,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_scenario.json",
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best is kept)")
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "scale": SCALE,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "policies": {},
    }
    for scenario_name in SCENARIOS:
        for policy in POLICIES:
            name = f"{policy}/{scenario_name}"
            entry = bench_cell(policy, scenario_name,
                               repeats=args.repeats)
            report["policies"][name] = entry
            print(
                f"{name:<26} "
                f"{entry['kernel']['events_per_s']:>12,.0f} ev/s  "
                f"({entry['kernel']['events']:,} events)"
            )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
