"""CI guard: fail if scenario-engine events/sec regressed vs. the
committed baseline.

Compares a fresh ``BENCH_scenario.json`` (produced by
``bench_scenario.py``) against
``benchmarks/BENCH_scenario.baseline.json``.  A cell fails when its
events/sec drops more than the tolerance (default 30 %) below the
baseline value.

Absolute events/sec varies across runner hardware, so the committed
baseline should be refreshed when the fleet changes; tune with
``--tolerance`` or the ``REPRO_BENCH_TOLERANCE`` environment variable
(fraction, e.g. ``0.5`` to allow a 50 % drop on slow shared runners).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenario.py
    python benchmarks/check_scenario_regression.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_scenario.baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="BENCH_scenario.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional events/sec drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())["policies"]
    baseline = json.loads(Path(args.baseline).read_text())["policies"]

    failures = []
    for cell, base_entry in sorted(baseline.items()):
        cur_entry = current.get(cell)
        if cur_entry is None:
            failures.append(f"{cell}: missing from current run")
            continue
        base_rate = base_entry["kernel"]["events_per_s"]
        cur_rate = cur_entry["kernel"]["events_per_s"]
        floor = (1.0 - args.tolerance) * base_rate
        status = "ok" if cur_rate >= floor else "REGRESSED"
        print(
            f"{cell:<26} baseline {base_rate:>12,.0f} ev/s   "
            f"current {cur_rate:>12,.0f} ev/s   floor "
            f"{floor:>12,.0f}   {status}"
        )
        if cur_rate < floor:
            failures.append(
                f"{cell}: {cur_rate:,.0f} ev/s < floor {floor:,.0f} "
                f"(baseline {base_rate:,.0f})"
            )
    if failures:
        print("\nscenario throughput regression detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nscenario throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
