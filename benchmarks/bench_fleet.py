"""Fleet benchmark: device-cells/sec through the sharded fleet path.

Measures the end-to-end fleet pipeline — :meth:`FleetSpec.expand`,
the sharded in-process sweep, and the streaming population-digest
aggregation — on a small heterogeneous fleet (two device classes, a
steady/Poisson scenario mix).  The cell cache is disabled so the
number reflects real simulation throughput, not cache lookups; the
engine hot path is already covered by ``bench_engine.py``, so a
regression *here* that does not show *there* means the fleet layers
(expansion, shard batching, digest folds) got slower.

Every fleet is run twice and the population ``fleet_summary()`` is
asserted byte-identical before any number is reported.

Emits ``BENCH_fleet.json`` in the manifest shape::

    {
      "meta": {...},
      "fleets": {
        "<policy>/<devices>dev": {
          "kernel": {"events": N, "wall_s": t, "events_per_s": r}
        }, ...
      }
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--out BENCH_fleet.json]
    python benchmarks/check_regression.py fleet  # CI guard (>30% drop)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict

from repro import MiB
from repro.fleet import DeviceClass, FleetSpec, ScenarioDraw
from repro.fleet.runner import run_fleet

#: Policies under test; the fleet mix itself is fixed.
POLICIES = ("baseline", "camdn-full")
DEVICES = 16
SCALE = 0.25


def fleet_spec(policy: str) -> FleetSpec:
    """The benchmark fleet: heterogeneous hardware and workloads."""
    return FleetSpec(
        devices=DEVICES,
        policy=policy,
        device_classes=(
            DeviceClass(name="table2", weight=3.0),
            DeviceClass(name="budget", weight=1.0,
                        cache_bytes=2 * MiB),
        ),
        scenario_draws=(
            ScenarioDraw(scenario="steady-quad", weight=2.0),
            ScenarioDraw(scenario="poisson-eight", weight=1.0,
                         arrival_scale=0.5),
        ),
        mc_runs=1,
        scale=SCALE,
        seed=2025,
    )


def bench_fleet(policy: str, repeats: int = 3) -> Dict:
    """Best-of-N fleet runs; asserts run-to-run byte-identity."""
    spec = fleet_spec(policy)
    best = None
    result = None
    summaries = set()
    for _ in range(max(repeats, 2)):
        start = time.perf_counter()
        result = run_fleet(spec, max_workers=1, use_cache=False)
        wall = time.perf_counter() - start
        summaries.add(
            json.dumps(result.fleet_summary(), sort_keys=True)
        )
        if best is None or wall < best:
            best = wall
    if len(summaries) != 1:
        raise AssertionError(
            f"{policy}: repeated fleet runs diverge"
        )
    if result.failures:
        raise AssertionError(
            f"{policy}: {len(result.failures)} device cells failed"
        )
    events = sum(r.events_processed for r in result.results)
    return {
        "kernel": {
            "events": events,
            "wall_s": best,
            "events_per_s": events / best,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_fleet.json",
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per fleet (best is kept)")
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "devices": DEVICES,
            "scale": SCALE,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "fleets": {},
    }
    for policy in POLICIES:
        name = f"{policy}/{DEVICES}dev"
        entry = bench_fleet(policy, repeats=args.repeats)
        report["fleets"][name] = entry
        print(
            f"{name:<22} "
            f"{entry['kernel']['events_per_s']:>12,.0f} ev/s  "
            f"({entry['kernel']['events']:,} events)"
        )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
