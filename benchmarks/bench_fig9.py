"""Benchmark: regenerate Figure 9 (QoS: SLA / STP / fairness)."""

from __future__ import annotations

import pytest

from repro.experiments.fig9_qos import (
    format_fig9,
    improvement_summary,
    run_fig9,
)
from repro.models.zoo import BENCHMARK_MODELS


@pytest.mark.benchmark(group="fig9")
def test_fig9_qos(benchmark):
    rows = benchmark.pedantic(
        run_fig9,
        kwargs={"scale": 0.25, "model_keys": BENCHMARK_MODELS * 2},
        iterations=1,
        rounds=1,
    )
    print()
    print(format_fig9(rows))

    summary = improvement_summary(rows)
    # Paper: CaMDN improves SLA 5.9x, STP 2.5x, fairness 3.0x on average.
    # Direction must hold: CaMDN at least matches the best baseline.
    assert summary["sla"] >= 0.95
    assert summary["stp"] >= 0.95
    assert summary["fairness"] >= 0.8
