"""CaMDN allocator microbenchmark: Algorithm 1 ops/sec, engine-free.

Drives :class:`repro.core.camdn.CaMDNSystem` directly through its layer
protocol (``begin_layer`` -> ``finish_layer`` across every layer of every
tenant, retiring and re-admitting tasks between inferences) with no
simulation engine around it, so the measured cost is exactly the paper's
Algorithm 1 machinery: candidate selection, predicted-availability
scans, page grants, and region/CPT resizes.

One *op* is one ``begin_layer`` + ``finish_layer`` pair.  Scenarios are
2/4/8-tenant mixes of the Table I models in both system modes (``full``
and ``hw_only``).

Emits ``BENCH_allocator.json``::

    {
      "meta": {...},
      "scenarios": {
        "full-8": {"ops": N, "wall_s": t, "ops_per_s": r},
        ...
      }
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_allocator.py [--out ...]
    python benchmarks/check_allocator_regression.py  # CI guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, Tuple

from repro.config import SoCConfig
from repro.core.camdn import CaMDNSystem
from repro.models.zoo import build_model

#: Tenant mixes (model abbreviations repeat the Table I order).
TENANT_MIXES: Dict[int, Tuple[str, ...]] = {
    2: ("RS.", "MB."),
    4: ("RS.", "MB.", "EF.", "VT."),
    8: ("RS.", "MB.", "EF.", "VT.", "BE.", "GN.", "WV.", "PP."),
}

#: Inferences per tenant per measured run.
INFERENCES = 6

MODES = ("full", "hw_only")


def run_scenario(mode: str, num_tenants: int) -> Tuple[int, float]:
    """One measured run; returns (ops, wall_s)."""
    soc = SoCConfig()
    system = CaMDNSystem(soc, mode=mode)
    graphs = [build_model(key) for key in TENANT_MIXES[num_tenants]]
    layer_counts = [len(g.layers) for g in graphs]

    # Admit one task per tenant; mapping files come from the shared memo
    # (warmed by the caller), so the measured window is pure Algorithm 1.
    ops = 0
    start = time.perf_counter()
    for inference in range(INFERENCES):
        for t, graph in enumerate(graphs):
            system.admit_task(f"T{t}", graph)
        # Tenants advance round-robin one layer at a time, mimicking the
        # interleaving the engine produces, including retries after
        # ungranted layers (the timeout/downgrade path).
        cursor = [0] * len(graphs)
        now = inference * 1.0
        live = len(graphs)
        while live:
            for t, graph in enumerate(graphs):
                layer = cursor[t]
                if layer >= layer_counts[t]:
                    continue
                task_id = f"T{t}"
                grant = system.begin_layer(task_id, layer, now)
                ops += 1
                while not grant.granted:
                    grant = system.retry_layer(task_id, layer, grant)
                system.finish_layer(task_id, layer, now)
                now += 1e-5
                cursor[t] += 1
                if cursor[t] >= layer_counts[t]:
                    live -= 1
        for t in range(len(graphs)):
            system.retire_task(f"T{t}", now)
    wall = time.perf_counter() - start
    return ops, wall


def bench_scenario(mode: str, num_tenants: int,
                   repeats: int) -> Dict[str, float]:
    run_scenario(mode, num_tenants)  # warm mapping memo + geometry
    best = None
    ops = 0
    for _ in range(repeats):
        ops, wall = run_scenario(mode, num_tenants)
        if best is None or wall < best:
            best = wall
    return {
        "ops": ops,
        "wall_s": best,
        "ops_per_s": ops / best,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_allocator.json",
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scenario (best is kept)")
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "inferences": INFERENCES,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": {},
    }
    for mode in MODES:
        for tenants in sorted(TENANT_MIXES):
            name = f"{mode}-{tenants}"
            entry = bench_scenario(mode, tenants, args.repeats)
            report["scenarios"][name] = entry
            print(
                f"{name:<10} {entry['ops']:>7} ops in "
                f"{entry['wall_s']:.4f}s   {entry['ops_per_s']:>12,.0f}"
                f" ops/s"
            )
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
